//! HygraBFS — the baseline hypergraph BFS of §IV: a *top-down* (sparse
//! push) traversal expressed as alternating `edge_map`s over the bipartite
//! structure, exactly as Hygra expresses its BFS application.

use crate::engine::{edge_map, resolve_mode, EdgeMapFns, Mode};
use crate::subset::VertexSubset;
use nwhy_core::{Hypergraph, Id};
use nwhy_obs::{Counter, Hist};
use nwhy_util::sync::{AtomicU32, Ordering};

/// Output of HygraBFS (levels/parents for both index sets, as in
/// `nwhy-core`'s HyperBFS so results are directly comparable).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HygraBfsResult {
    /// Level per hyperedge (`u32::MAX` unreached; even when reached).
    pub edge_levels: Vec<u32>,
    /// Level per hypernode (odd when reached).
    pub node_levels: Vec<u32>,
    /// Parent per hyperedge (a hypernode ID; source is its own parent).
    pub edge_parents: Vec<Id>,
    /// Parent per hypernode (a hyperedge ID).
    pub node_parents: Vec<Id>,
}

struct Claim<'a> {
    parents: &'a [AtomicU32],
}

impl EdgeMapFns for Claim<'_> {
    fn update_atomic(&self, src: Id, dst: Id) -> bool {
        // An out-of-range destination cannot be claimed; returning false
        // keeps it out of the frontier rather than aborting the traversal.
        let Some(p) = self.parents.get(dst as usize) else {
            return false;
        };
        p.compare_exchange(u32::MAX, src, Ordering::AcqRel, Ordering::Relaxed)
            .is_ok()
    }
    fn update(&self, src: Id, dst: Id) -> bool {
        let Some(p) = self.parents.get(dst as usize) else {
            return false;
        };
        if p.load(Ordering::Relaxed) == u32::MAX {
            p.store(src, Ordering::Relaxed);
            true
        } else {
            false
        }
    }
    fn cond(&self, dst: Id) -> bool {
        self.parents
            .get(dst as usize)
            .is_some_and(|p| p.load(Ordering::Relaxed) == u32::MAX)
    }
}

/// Top-down HygraBFS from a source hyperedge.
pub fn hygra_bfs(h: &Hypergraph, source: Id) -> HygraBfsResult {
    hygra_bfs_with_mode(h, source, Mode::ForceSparse)
}

/// [`hygra_bfs_with_mode`] attributed to a request: when `ctx` is
/// `Some`, the traversal runs with it entered, so the `hygra.bfs` span
/// and the driver loop's counter bumps tag their flight events with the
/// request id.
pub fn hygra_bfs_ctx(
    h: &Hypergraph,
    source: Id,
    mode: Mode,
    ctx: Option<nwhy_obs::RequestCtx>,
) -> HygraBfsResult {
    let _ctx = ctx.map(nwhy_obs::RequestCtx::enter);
    hygra_bfs_with_mode(h, source, mode)
}

/// HygraBFS with an explicit engine mode (the ablation benches compare
/// sparse-only against the auto direction heuristic).
pub fn hygra_bfs_with_mode(h: &Hypergraph, source: Id, mode: Mode) -> HygraBfsResult {
    let ne = h.num_hyperedges();
    let nv = h.num_hypernodes();
    assert!(
        (source as usize) < ne,
        "source hyperedge {source} out of range {ne}"
    );

    let edge_parents: Vec<AtomicU32> = (0..ne).map(|_| AtomicU32::new(u32::MAX)).collect();
    let node_parents: Vec<AtomicU32> = (0..nv).map(|_| AtomicU32::new(u32::MAX)).collect();
    let mut edge_levels = vec![u32::MAX; ne];
    let mut node_levels = vec![u32::MAX; nv];
    // `source < ne` is asserted above, so both lookups succeed.
    if let Some(p) = edge_parents.get(source as usize) {
        p.store(source, Ordering::Relaxed);
    }
    if let Some(l) = edge_levels.get_mut(source as usize) {
        *l = 0;
    }

    let _span = nwhy_obs::span("hygra.bfs");
    let mut edge_frontier = VertexSubset::single(ne, source);
    let mut depth = 0u32;
    // One "round" per edge_map half-step (each advances the depth by 1).
    // The direction decision is resolved up front via `resolve_mode` so it
    // can be counted; the forced mode handed to `edge_map` reproduces
    // exactly what `edge_map(.., mode)` would have chosen.
    let mut prev_dense: Option<bool> = None;
    loop {
        // hyperedges → hypernodes
        depth += 1;
        nwhy_obs::incr(Counter::BfsRounds);
        nwhy_obs::observe(Hist::BfsFrontierEdges, edge_frontier.len() as u64);
        let step_mode = resolve_mode(
            h.edges(),
            &mut edge_frontier,
            mode,
            &mut prev_dense,
            Counter::BfsSparseSteps,
            Counter::BfsDenseSteps,
            Counter::BfsDirectionSwitches,
        );
        let mut node_frontier = edge_map(
            h.edges(),
            h.nodes(),
            &mut edge_frontier,
            &Claim {
                parents: &node_parents,
            },
            step_mode,
        );
        if node_frontier.is_empty() {
            break;
        }
        for &v in node_frontier.as_sparse() {
            if let Some(l) = node_levels.get_mut(v as usize) {
                *l = depth;
            }
        }
        // hypernodes → hyperedges
        depth += 1;
        nwhy_obs::incr(Counter::BfsRounds);
        nwhy_obs::observe(Hist::BfsFrontierNodes, node_frontier.len() as u64);
        let step_mode = resolve_mode(
            h.nodes(),
            &mut node_frontier,
            mode,
            &mut prev_dense,
            Counter::BfsSparseSteps,
            Counter::BfsDenseSteps,
            Counter::BfsDirectionSwitches,
        );
        edge_frontier = edge_map(
            h.nodes(),
            h.edges(),
            &mut node_frontier,
            &Claim {
                parents: &edge_parents,
            },
            step_mode,
        );
        if edge_frontier.is_empty() {
            break;
        }
        for &e in edge_frontier.as_sparse() {
            if let Some(l) = edge_levels.get_mut(e as usize) {
                *l = depth;
            }
        }
    }

    HygraBfsResult {
        edge_levels,
        node_levels,
        edge_parents: edge_parents
            .into_iter()
            .map(AtomicU32::into_inner)
            .collect(),
        node_parents: node_parents
            .into_iter()
            .map(AtomicU32::into_inner)
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nwhy_core::algorithms::hyper_bfs::hyper_bfs_top_down;
    use nwhy_core::fixtures::paper_hypergraph;

    #[test]
    fn matches_nwhy_hyper_bfs_on_fixture() {
        let h = paper_hypergraph();
        for src in 0..4 {
            let hy = hygra_bfs(&h, src);
            let nw = hyper_bfs_top_down(&h, src);
            assert_eq!(hy.edge_levels, nw.edge_levels, "src {src}");
            assert_eq!(hy.node_levels, nw.node_levels, "src {src}");
        }
    }

    #[test]
    fn all_modes_agree() {
        let h = paper_hypergraph();
        let sparse = hygra_bfs_with_mode(&h, 0, Mode::ForceSparse);
        let dense = hygra_bfs_with_mode(&h, 0, Mode::ForceDense);
        let auto = hygra_bfs_with_mode(&h, 0, Mode::Auto);
        assert_eq!(sparse.edge_levels, dense.edge_levels);
        assert_eq!(sparse.edge_levels, auto.edge_levels);
        assert_eq!(sparse.node_levels, dense.node_levels);
    }

    #[test]
    fn disconnected_unreached() {
        let h = Hypergraph::from_memberships(&[vec![0], vec![1]]);
        let r = hygra_bfs(&h, 0);
        assert_eq!(r.edge_levels, vec![0, u32::MAX]);
        assert_eq!(r.node_levels, vec![1, u32::MAX]);
    }

    #[test]
    fn parents_are_witnesses() {
        let h = paper_hypergraph();
        let r = hygra_bfs(&h, 0);
        for v in 0..9u32 {
            let p = r.node_parents[v as usize];
            if p != u32::MAX {
                assert!(h.edge_members(p).contains(&v));
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_source_panics() {
        let h = paper_hypergraph();
        hygra_bfs(&h, 4);
    }
}
