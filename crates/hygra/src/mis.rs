//! Hypergraph maximal independent set — one of Hygra's applications
//! (§V of the NWHy paper lists MIS in the framework suites).
//!
//! Independence here means *no two chosen hypernodes share a hyperedge*
//! (independence in the clique expansion) — but the algorithm never
//! materializes the expansion: each priority round works through the
//! bipartite structure directly. A hypernode joins the set when it holds
//! the minimum `(priority, id)` among the undecided members of **every**
//! hyperedge it belongs to; winners knock out all co-members.

use nwhy_core::ids;
use nwhy_core::{Hypergraph, Id};
use nwhy_util::sync::{AtomicU8, Ordering};
use rayon::prelude::*;

const UNDECIDED: u8 = 0;
const IN_SET: u8 = 1;
const OUT: u8 = 2;

#[inline]
fn priority(v: Id, seed: u64) -> u64 {
    let mut z = (v as u64)
        .wrapping_add(seed)
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Computes a hypergraph MIS over hypernodes; deterministic per seed.
pub fn hygra_mis(h: &Hypergraph, seed: u64) -> Vec<bool> {
    let _span = nwhy_obs::span("hygra.mis");
    let nv = h.num_hypernodes();
    let ne = h.num_hyperedges();
    let state: Vec<AtomicU8> = (0..nv).map(|_| AtomicU8::new(UNDECIDED)).collect();
    let mut undecided: Vec<Id> = (0..ids::from_usize(nv)).collect();
    let mut round_seed = seed;

    while !undecided.is_empty() {
        // 1. per-hyperedge minimum (priority, id) over undecided members
        let snapshot: Vec<u8> = state.iter().map(|s| s.load(Ordering::Relaxed)).collect();
        let edge_min: Vec<(u64, Id)> = (0..ids::from_usize(ne))
            .into_par_iter()
            .map(|e| {
                h.edge_members(e)
                    .iter()
                    .filter(|&&v| snapshot[v as usize] == UNDECIDED)
                    .map(|&v| (priority(v, round_seed), v))
                    .min()
                    .unwrap_or((u64::MAX, u32::MAX))
            })
            .collect();

        // 2. a hypernode wins if it is the minimum of every edge it is in
        undecided.par_iter().for_each(|&v| {
            let key = (priority(v, round_seed), v);
            let wins = h
                .node_memberships(v)
                .iter()
                .all(|&e| edge_min[e as usize] == key);
            if wins {
                state[v as usize].store(IN_SET, Ordering::Relaxed);
            }
        });

        // 3. winners knock out undecided co-members
        undecided.par_iter().for_each(|&v| {
            if state[v as usize].load(Ordering::Relaxed) != IN_SET {
                return;
            }
            for &e in h.node_memberships(v) {
                for &w in h.edge_members(e) {
                    if w != v {
                        let _ = state[w as usize].compare_exchange(
                            UNDECIDED,
                            OUT,
                            Ordering::AcqRel,
                            Ordering::Relaxed,
                        );
                    }
                }
            }
        });
        undecided.retain(|&v| state[v as usize].load(Ordering::Relaxed) == UNDECIDED);
        round_seed = round_seed.wrapping_add(0xA076_1D64_78BD_642F);
    }
    state
        .into_iter()
        .map(|s| s.into_inner() == IN_SET)
        .collect()
}

/// Validates hypergraph-MIS invariants: no hyperedge contains two chosen
/// hypernodes, and every unchosen hypernode *that shares a hyperedge with
/// anyone* shares one with a chosen hypernode. Hypernodes only in
/// singleton hyperedges (or none) must be chosen.
// lint: obs: validation oracle for tests and `nwhy-cli check`, not a serving kernel
pub fn validate_hygra_mis(h: &Hypergraph, mis: &[bool]) -> Result<(), String> {
    for e in 0..ids::from_usize(h.num_hyperedges()) {
        let chosen: Vec<Id> = h
            .edge_members(e)
            .iter()
            .copied()
            .filter(|&v| mis[v as usize])
            .collect();
        if chosen.len() > 1 {
            return Err(format!("hyperedge {e} contains {chosen:?}"));
        }
    }
    for v in 0..ids::from_usize(h.num_hypernodes()) {
        if mis[v as usize] {
            continue;
        }
        let covered = h
            .node_memberships(v)
            .iter()
            .any(|&e| h.edge_members(e).iter().any(|&w| w != v && mis[w as usize]));
        if !covered {
            return Err(format!("unchosen hypernode {v} has no chosen co-member"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_hyperedge_picks_one() {
        let h = Hypergraph::from_memberships(&[vec![0, 1, 2, 3]]);
        let mis = hygra_mis(&h, 1);
        assert_eq!(mis.iter().filter(|&&b| b).count(), 1);
        validate_hygra_mis(&h, &mis).unwrap();
    }

    #[test]
    fn isolated_nodes_all_chosen() {
        let bel = nwhy_core::BiEdgeList::from_incidences(1, 4, vec![(0, 0), (0, 1)]);
        let h = Hypergraph::from_biedgelist(&bel);
        let mis = hygra_mis(&h, 2);
        assert!(mis[2] && mis[3], "isolated nodes must join");
        validate_hygra_mis(&h, &mis).unwrap();
    }

    #[test]
    fn chain_of_overlapping_edges() {
        let h = Hypergraph::from_memberships(&[vec![0, 1, 2], vec![2, 3, 4], vec![4, 5, 6]]);
        for seed in 0..5 {
            let mis = hygra_mis(&h, seed);
            validate_hygra_mis(&h, &mis).unwrap();
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let h = nwhy_core::fixtures::paper_hypergraph();
        assert_eq!(hygra_mis(&h, 9), hygra_mis(&h, 9));
        let mis = hygra_mis(&h, 9);
        validate_hygra_mis(&h, &mis).unwrap();
    }

    #[test]
    fn matches_clique_expansion_mis_semantics() {
        // independence in the hypergraph MIS == independence in the
        // clique expansion (validated structurally, not by equality of
        // sets since tie-breaking differs)
        let h = nwhy_core::fixtures::paper_hypergraph();
        let mis = hygra_mis(&h, 3);
        let ce = nwhy_core::clique::clique_expansion(&h);
        for (u, nbrs) in ce.iter() {
            if mis[u as usize] {
                for &w in nbrs {
                    assert!(!mis[w as usize], "{u} and {w} adjacent in expansion");
                }
            }
        }
    }

    #[test]
    fn empty_hypergraph() {
        let h = Hypergraph::from_memberships(&[]);
        assert!(hygra_mis(&h, 0).is_empty());
    }
}
