//! The Ligra/Hygra processing engine: `edge_map` and `vertex_map`.
//!
//! `edge_map` applies an update function across the edges leaving a
//! frontier on one side of the bipartite structure, producing the next
//! frontier on the other side. Two traversal modes:
//!
//! - **sparse (push)**: parallel over frontier members, pushing along
//!   their incidence lists; updates race, so the update function must be
//!   atomic (CAS-style, returning `true` exactly once per target).
//! - **dense (pull)**: parallel over all *target* vertices that pass
//!   `cond`, scanning their reverse incidence lists for frontier members;
//!   at most one thread touches a target, so updates are plain writes.
//!
//! The direction heuristic is Ligra's: go dense when
//! `|frontier| + out_edges(frontier) > m / THRESHOLD_DENOM`.

use crate::subset::VertexSubset;
use nwgraph::Csr;
use nwhy_core::ids;
use nwhy_core::Id;
use rayon::prelude::*;

/// Ligra's default threshold denominator for the dense switch.
pub const THRESHOLD_DENOM: usize = 20;

/// Traversal mode chosen by (or forced on) [`edge_map`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Always push (sparse). What HygraBFS in the paper uses.
    ForceSparse,
    /// Always pull (dense).
    ForceDense,
    /// Ligra's size heuristic.
    Auto,
}

/// The update/condition pair for an `edge_map`.
///
/// `update_atomic(src, dst)` must return `true` exactly once per `dst`
/// that should join the output frontier under concurrent invocation.
/// `update(src, dst)` is the sequential-consistency variant used in dense
/// mode. `cond(dst)` prunes targets (dense mode skips and stops early).
pub trait EdgeMapFns: Sync {
    /// Racy (push-side) update.
    fn update_atomic(&self, src: Id, dst: Id) -> bool;
    /// Single-writer (pull-side) update.
    fn update(&self, src: Id, dst: Id) -> bool {
        self.update_atomic(src, dst)
    }
    /// Should `dst` still be considered?
    fn cond(&self, dst: Id) -> bool;
}

/// Resolves a [`Mode`] to the concrete direction `edge_map` will take
/// for this frontier: `true` = dense (pull), `false` = sparse (push).
///
/// Exposed so instrumented traversal loops can observe the Ligra
/// heuristic's decision (and count direction switches) before calling
/// [`edge_map`] with the matching force mode — `edge_map(.., Mode::Auto)`
/// and `edge_map(.., if choose_dense(..) { Mode::ForceDense } else {
/// Mode::ForceSparse })` are semantically identical.
pub fn choose_dense(adj: &Csr, frontier: &mut VertexSubset, mode: Mode) -> bool {
    match mode {
        Mode::ForceSparse => false,
        Mode::ForceDense => true,
        Mode::Auto => {
            let m = adj.num_edges();
            let ids = frontier.as_sparse();
            let out_edges: usize = ids.par_iter().map(|&u| adj.degree(u)).sum();
            ids.len() + out_edges > m / THRESHOLD_DENOM
        }
    }
}

/// Instrumented [`choose_dense`]: resolves the direction for one
/// traversal half-step, records it in the given step counters, counts a
/// direction switch when the decision flips relative to `prev_dense`, and
/// returns the force mode matching the decision. Observability only —
/// traversal semantics are unchanged (see [`choose_dense`]).
pub(crate) fn resolve_mode(
    adj: &Csr,
    frontier: &mut VertexSubset,
    mode: Mode,
    prev_dense: &mut Option<bool>,
    sparse_steps: nwhy_obs::Counter,
    dense_steps: nwhy_obs::Counter,
    switches: nwhy_obs::Counter,
) -> Mode {
    let dense = choose_dense(adj, frontier, mode);
    nwhy_obs::incr(if dense { dense_steps } else { sparse_steps });
    if prev_dense.is_some_and(|p| p != dense) {
        nwhy_obs::incr(switches);
    }
    *prev_dense = Some(dense);
    if dense {
        Mode::ForceDense
    } else {
        Mode::ForceSparse
    }
}

/// Applies `fns` over the edges from `frontier` (a subset of `adj`'s
/// source space) to `adj`'s target space. `radj` must be the transpose of
/// `adj` (used by the dense mode). Returns the new frontier over the
/// target space.
pub fn edge_map(
    adj: &Csr,
    radj: &Csr,
    frontier: &mut VertexSubset,
    fns: &impl EdgeMapFns,
    mode: Mode,
) -> VertexSubset {
    assert_eq!(
        frontier.space(),
        adj.num_vertices(),
        "frontier space mismatch"
    );
    if choose_dense(adj, frontier, mode) {
        edge_map_dense(radj, frontier, fns)
    } else {
        edge_map_sparse(adj, frontier, fns)
    }
}

fn edge_map_sparse(adj: &Csr, frontier: &mut VertexSubset, fns: &impl EdgeMapFns) -> VertexSubset {
    let ids = frontier.as_sparse();
    let next: Vec<Id> = ids
        .par_iter()
        .fold(Vec::new, |mut acc, &u| {
            for &v in adj.neighbors(u) {
                if fns.cond(v) && fns.update_atomic(u, v) {
                    acc.push(v);
                }
            }
            acc
        })
        .reduce(Vec::new, |mut a, mut b| {
            a.append(&mut b);
            a
        });
    VertexSubset::from_sparse(adj.num_targets(), next)
}

fn edge_map_dense(radj: &Csr, frontier: &mut VertexSubset, fns: &impl EdgeMapFns) -> VertexSubset {
    let flags = frontier.as_dense();
    let nt = radj.num_vertices();
    let next: Vec<bool> = (0..nt)
        .into_par_iter()
        .map(|v| {
            let v = ids::from_usize(v);
            if !fns.cond(v) {
                return false;
            }
            let mut added = false;
            for &u in radj.neighbors(v) {
                if flags[u as usize] && fns.update(u, v) {
                    added = true;
                }
                if !fns.cond(v) {
                    break; // Ligra's early exit once dst is satisfied
                }
            }
            added
        })
        .collect();
    VertexSubset::from_dense(next)
}

/// Applies `f` to every member of the frontier in parallel.
pub fn vertex_map(frontier: &mut VertexSubset, f: impl Fn(Id) + Sync + Send) {
    frontier.as_sparse().par_iter().for_each(|&v| f(v));
}

/// Filters the frontier, keeping members where `keep` returns true.
pub fn vertex_filter(
    frontier: &mut VertexSubset,
    keep: impl Fn(Id) -> bool + Sync + Send,
) -> VertexSubset {
    let n = frontier.space();
    let kept: Vec<Id> = frontier
        .as_sparse()
        .par_iter()
        .copied()
        .filter(|&v| keep(v))
        .collect();
    VertexSubset::from_sparse(n, kept)
}

#[cfg(test)]
mod tests {
    use super::*;

    // lint: test-only counters; plain std atomics keep the test
    // independent of the loom-switched re-export
    use std::sync::atomic::{AtomicU32, Ordering};

    /// Bipartite test structure: 2 sources over 3 targets.
    fn bipartite() -> (Csr, Csr) {
        let adj = Csr::from_pairs(2, 3, &[(0, 0), (0, 1), (1, 1), (1, 2)], None);
        let radj = adj.transpose();
        (adj, radj)
    }

    /// Visit-once functions: claim targets with a CAS on a parent array.
    struct Claim<'a> {
        parents: &'a [AtomicU32],
    }
    impl EdgeMapFns for Claim<'_> {
        fn update_atomic(&self, src: Id, dst: Id) -> bool {
            self.parents[dst as usize]
                .compare_exchange(u32::MAX, src, Ordering::AcqRel, Ordering::Relaxed)
                .is_ok()
        }
        fn update(&self, src: Id, dst: Id) -> bool {
            if self.parents[dst as usize].load(Ordering::Relaxed) == u32::MAX {
                self.parents[dst as usize].store(src, Ordering::Relaxed);
                true
            } else {
                false
            }
        }
        fn cond(&self, dst: Id) -> bool {
            self.parents[dst as usize].load(Ordering::Relaxed) == u32::MAX
        }
    }

    fn run_mode(mode: Mode) -> Vec<u32> {
        let (adj, radj) = bipartite();
        let parents: Vec<AtomicU32> = (0..3).map(|_| AtomicU32::new(u32::MAX)).collect();
        let mut frontier = VertexSubset::single(2, 0);
        let next = edge_map(
            &adj,
            &radj,
            &mut frontier,
            &Claim { parents: &parents },
            mode,
        );
        assert_eq!(next.to_vec(), vec![0, 1]);
        parents.iter().map(|p| p.load(Ordering::Relaxed)).collect()
    }

    #[test]
    fn sparse_and_dense_agree() {
        let sparse = run_mode(Mode::ForceSparse);
        let dense = run_mode(Mode::ForceDense);
        assert_eq!(sparse, dense);
        assert_eq!(sparse, vec![0, 0, u32::MAX]);
    }

    #[test]
    fn auto_mode_produces_same_frontier() {
        let auto = run_mode(Mode::Auto);
        assert_eq!(auto, vec![0, 0, u32::MAX]);
    }

    #[test]
    fn cond_prunes_targets() {
        let (adj, radj) = bipartite();
        // target 1 already claimed → cond false
        let parents: Vec<AtomicU32> = vec![
            AtomicU32::new(u32::MAX),
            AtomicU32::new(9),
            AtomicU32::new(u32::MAX),
        ];
        let mut frontier = VertexSubset::from_sparse(2, vec![0, 1]);
        let next = edge_map(
            &adj,
            &radj,
            &mut frontier,
            &Claim { parents: &parents },
            Mode::ForceSparse,
        );
        assert_eq!(next.to_vec(), vec![0, 2]);
    }

    #[test]
    fn vertex_map_touches_all_members() {
        let counts: Vec<AtomicU32> = (0..5).map(|_| AtomicU32::new(0)).collect();
        let mut s = VertexSubset::from_sparse(5, vec![0, 2, 4]);
        vertex_map(&mut s, |v| {
            counts[v as usize].fetch_add(1, Ordering::Relaxed);
        });
        let got: Vec<u32> = counts.iter().map(|c| c.load(Ordering::Relaxed)).collect();
        assert_eq!(got, vec![1, 0, 1, 0, 1]);
    }

    #[test]
    fn vertex_filter_keeps_matching() {
        let mut s = VertexSubset::full(6);
        let f = vertex_filter(&mut s, |v| v % 2 == 0);
        assert_eq!(f.to_vec(), vec![0, 2, 4]);
    }

    #[test]
    fn empty_frontier_yields_empty() {
        let (adj, radj) = bipartite();
        let parents: Vec<AtomicU32> = (0..3).map(|_| AtomicU32::new(u32::MAX)).collect();
        let mut frontier = VertexSubset::empty(2);
        for mode in [Mode::ForceSparse, Mode::ForceDense, Mode::Auto] {
            let next = edge_map(
                &adj,
                &radj,
                &mut frontier,
                &Claim { parents: &parents },
                mode,
            );
            assert!(next.is_empty(), "{mode:?}");
        }
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        /// Sparse and dense edge_map must produce the same *visited set*
        /// for visit-once semantics on arbitrary bipartite structures and
        /// frontiers (parents may differ: any frontier in-neighbor is a
        /// legal claimer).
        fn run_claim(
            adj: &Csr,
            radj: &Csr,
            frontier_ids: &[Id],
            mode: Mode,
        ) -> (Vec<bool>, Vec<Id>) {
            let nt = adj.num_targets();
            let parents: Vec<AtomicU32> = (0..nt).map(|_| AtomicU32::new(u32::MAX)).collect();
            let mut frontier = VertexSubset::from_sparse(adj.num_vertices(), frontier_ids.to_vec());
            let next = edge_map(adj, radj, &mut frontier, &Claim { parents: &parents }, mode);
            let visited = parents
                .iter()
                .map(|p| p.load(Ordering::Relaxed) != u32::MAX)
                .collect();
            (visited, next.to_vec())
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(48))]
            #[test]
            fn sparse_dense_auto_agree(
                pairs in proptest::collection::vec((0u32..8, 0u32..12), 0..60),
                frontier_seed in proptest::collection::btree_set(0u32..8, 0..8),
            ) {
                let adj = Csr::from_pairs(8, 12, &pairs, None);
                let radj = adj.transpose();
                let frontier: Vec<Id> = frontier_seed.into_iter().collect();
                let (vs, ns) = run_claim(&adj, &radj, &frontier, Mode::ForceSparse);
                let (vd, nd) = run_claim(&adj, &radj, &frontier, Mode::ForceDense);
                let (va, na) = run_claim(&adj, &radj, &frontier, Mode::Auto);
                prop_assert_eq!(&vs, &vd);
                prop_assert_eq!(&vs, &va);
                prop_assert_eq!(&ns, &nd);
                prop_assert_eq!(&ns, &na);
                // the next frontier is exactly the targets adjacent to the
                // frontier
                let mut expect: Vec<Id> = pairs
                    .iter()
                    .filter(|(u, _)| frontier.contains(u))
                    .map(|&(_, v)| v)
                    .collect();
                expect.sort_unstable();
                expect.dedup();
                prop_assert_eq!(ns, expect);
            }
        }
    }
}
