//! Hygra's hypergraph PageRank.
//!
//! Shun's Hygra framework lists PageRank among its hypergraph
//! applications (§V of the NWHy paper). The hypergraph formulation is a
//! two-phase rank flow per iteration: vertex rank spreads uniformly over
//! incident hyperedges, hyperedge rank spreads uniformly over member
//! vertices — each phase one dense `edge_map` over the bipartite
//! structure.

use crate::engine::{edge_map, EdgeMapFns, Mode};
use crate::subset::VertexSubset;
use nwhy_core::ids;
use nwhy_core::{Hypergraph, Id};
use nwhy_util::atomics::AtomicF64;

/// Options for [`hygra_pagerank`].
#[derive(Debug, Clone, Copy)]
pub struct PageRankOptions {
    /// Damping factor.
    pub damping: f64,
    /// L1 convergence threshold on the hypernode ranks.
    pub tolerance: f64,
    /// Iteration cap.
    pub max_iterations: usize,
}

impl Default for PageRankOptions {
    fn default() -> Self {
        Self {
            damping: 0.85,
            tolerance: 1e-9,
            max_iterations: 100,
        }
    }
}

/// Accumulates `src_rank / src_degree` into the destination.
struct Spread<'a> {
    contribution: &'a [f64],
    acc: &'a [AtomicF64],
}

impl EdgeMapFns for Spread<'_> {
    fn update_atomic(&self, src: Id, dst: Id) -> bool {
        self.acc[dst as usize].fetch_add(self.contribution[src as usize]);
        false // frontier membership is not used; we run dense every round
    }
    fn cond(&self, _dst: Id) -> bool {
        true
    }
}

/// Hypergraph PageRank over hypernodes. Returns `(node_ranks, iters)`;
/// ranks sum to 1 (dangling mass redistributed uniformly).
pub fn hygra_pagerank(h: &Hypergraph, opts: PageRankOptions) -> (Vec<f64>, usize) {
    let _span = nwhy_obs::span("hygra.pagerank");
    let nv = h.num_hypernodes();
    let ne = h.num_hyperedges();
    if nv == 0 {
        return (Vec::new(), 0);
    }
    let mut rank = vec![1.0 / nv as f64; nv];
    let base = (1.0 - opts.damping) / nv as f64;

    for it in 0..opts.max_iterations {
        // phase 1: nodes → hyperedges
        let node_contrib: Vec<f64> = (0..nv)
            .map(|v| {
                let d = h.node_degree(ids::from_usize(v));
                if d == 0 {
                    0.0
                } else {
                    rank[v] / d as f64
                }
            })
            .collect();
        let edge_acc: Vec<AtomicF64> = (0..ne).map(|_| AtomicF64::new(0.0)).collect();
        let mut all_nodes = VertexSubset::full(nv);
        edge_map(
            h.nodes(),
            h.edges(),
            &mut all_nodes,
            &Spread {
                contribution: &node_contrib,
                acc: &edge_acc,
            },
            Mode::ForceSparse,
        );

        // phase 2: hyperedges → nodes
        let edge_rank: Vec<f64> = edge_acc.iter().map(AtomicF64::load).collect();
        let edge_contrib: Vec<f64> = (0..ne)
            .map(|e| {
                let d = h.edge_degree(ids::from_usize(e));
                if d == 0 {
                    0.0
                } else {
                    edge_rank[e] / d as f64
                }
            })
            .collect();
        let node_acc: Vec<AtomicF64> = (0..nv).map(|_| AtomicF64::new(0.0)).collect();
        let mut all_edges = VertexSubset::full(ne);
        edge_map(
            h.edges(),
            h.nodes(),
            &mut all_edges,
            &Spread {
                contribution: &edge_contrib,
                acc: &node_acc,
            },
            Mode::ForceSparse,
        );

        // dangling: rank of isolated nodes + rank stuck in empty edges
        let gathered: Vec<f64> = node_acc.iter().map(AtomicF64::load).collect();
        let gathered_sum: f64 = gathered.iter().sum();
        let dangling = (1.0 - gathered_sum).max(0.0);
        let dangling_share = opts.damping * dangling / nv as f64;

        let mut delta = 0.0;
        let mut next = vec![0.0; nv];
        for v in 0..nv {
            next[v] = base + dangling_share + opts.damping * gathered[v];
            delta += (next[v] - rank[v]).abs();
        }
        rank = next;
        if delta < opts.tolerance {
            return (rank, it + 1);
        }
    }
    (rank, opts.max_iterations)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nwhy_core::fixtures::paper_hypergraph;

    #[test]
    fn ranks_sum_to_one() {
        let h = paper_hypergraph();
        let (pr, iters) = hygra_pagerank(&h, PageRankOptions::default());
        assert!((pr.iter().sum::<f64>() - 1.0).abs() < 1e-6);
        assert!(iters > 0);
    }

    #[test]
    fn symmetric_structure_gives_symmetric_ranks() {
        // two hyperedges {0,1} and {2,3}: all nodes equivalent
        let h = Hypergraph::from_memberships(&[vec![0, 1], vec![2, 3]]);
        let (pr, _) = hygra_pagerank(&h, PageRankOptions::default());
        for w in pr.windows(2) {
            assert!((w[0] - w[1]).abs() < 1e-9);
        }
    }

    #[test]
    fn shared_node_gains_rank() {
        // node 1 sits in both hyperedges — it should outrank the leaves
        let h = Hypergraph::from_memberships(&[vec![0, 1], vec![1, 2]]);
        let (pr, _) = hygra_pagerank(&h, PageRankOptions::default());
        assert!(pr[1] > pr[0]);
        assert!(pr[1] > pr[2]);
    }

    #[test]
    fn isolated_nodes_keep_base_rank() {
        let bel = nwhy_core::BiEdgeList::from_incidences(1, 3, vec![(0, 0), (0, 1)]);
        let h = Hypergraph::from_biedgelist(&bel);
        let (pr, _) = hygra_pagerank(&h, PageRankOptions::default());
        assert!((pr.iter().sum::<f64>() - 1.0).abs() < 1e-6);
        assert!(pr[2] > 0.0);
    }

    #[test]
    fn matches_pagerank_on_clique_expansion_shape() {
        // star hypergraph: hub node 0 in every edge
        let h = Hypergraph::from_memberships(&[vec![0, 1], vec![0, 2], vec![0, 3]]);
        let (pr, _) = hygra_pagerank(&h, PageRankOptions::default());
        assert!(pr[0] > pr[1]);
        assert!((pr[1] - pr[3]).abs() < 1e-9);
    }

    #[test]
    fn empty_hypergraph() {
        let h = Hypergraph::from_memberships(&[]);
        let (pr, iters) = hygra_pagerank(&h, PageRankOptions::default());
        assert!(pr.is_empty());
        assert_eq!(iters, 0);
    }
}
