//! HygraCC — the baseline label-propagation hypergraph connected
//! components of §IV, expressed through the Hygra engine.
//!
//! Minimum labels propagate across incidences via alternating `edge_map`s;
//! only entities whose label changed stay in the frontier for the next
//! half-round (the frontier-driven asynchrony that distinguishes Hygra's
//! formulation from a bulk-synchronous sweep over all incidences).

use crate::engine::{edge_map, resolve_mode, EdgeMapFns, Mode};
use crate::subset::VertexSubset;
use nwhy_core::ids::{self, AdjoinId, HypernodeId};
use nwhy_core::{Hypergraph, Id};
use nwhy_obs::{Counter, Hist};
use nwhy_util::atomics::atomic_min_u32;
use nwhy_util::sync::{AtomicU32, Ordering};

/// HygraCC output — labels per index set, comparable (as a partition)
/// with `nwhy-core`'s HyperCC/AdjoinCC results.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HygraCcResult {
    /// Label per hyperedge.
    pub edge_labels: Vec<Id>,
    /// Label per hypernode.
    pub node_labels: Vec<Id>,
}

impl HygraCcResult {
    /// Number of distinct components.
    pub fn num_components(&self) -> usize {
        let mut all: Vec<Id> = self
            .edge_labels
            .iter()
            .chain(self.node_labels.iter())
            .copied()
            .collect();
        all.sort_unstable();
        all.dedup();
        all.len()
    }
}

/// Propagate-min update: lowering the destination label re-activates it.
struct MinLabel<'a> {
    src_labels: &'a [AtomicU32],
    dst_labels: &'a [AtomicU32],
}

impl EdgeMapFns for MinLabel<'_> {
    fn update_atomic(&self, src: Id, dst: Id) -> bool {
        // Out-of-range endpoints carry no label to propagate; returning
        // false keeps the destination out of the woken frontier.
        match (
            self.src_labels.get(src as usize),
            self.dst_labels.get(dst as usize),
        ) {
            (Some(s), Some(d)) => atomic_min_u32(d, s.load(Ordering::Relaxed)),
            _ => false,
        }
    }
    fn cond(&self, _dst: Id) -> bool {
        true
    }
}

/// Label-propagation HygraCC. Labels share one space (hyperedge `e ↦ e`,
/// hypernode `v ↦ n_e + v`), so final labels are component-minimum
/// hyperedge IDs (or shifted node IDs for edge-free components).
pub fn hygra_cc(h: &Hypergraph) -> HygraCcResult {
    hygra_cc_ctx(h, None)
}

/// [`hygra_cc`] attributed to a request: when `ctx` is `Some`, the
/// propagation runs with it entered, so the `hygra.cc` span and counter
/// bumps tag their flight events with the request id.
pub fn hygra_cc_ctx(h: &Hypergraph, ctx: Option<nwhy_obs::RequestCtx>) -> HygraCcResult {
    let _ctx = ctx.map(nwhy_obs::RequestCtx::enter);
    let ne = h.num_hyperedges();
    let nv = h.num_hypernodes();
    let edge_labels: Vec<AtomicU32> = (0..ids::from_usize(ne)).map(AtomicU32::new).collect();
    let node_labels: Vec<AtomicU32> = (0..ids::from_usize(nv))
        .map(|v| AtomicU32::new(AdjoinId::from_node(HypernodeId::new(v), ne).raw()))
        .collect();

    let _span = nwhy_obs::span("hygra.cc");
    // Everything starts active.
    let mut edge_frontier = VertexSubset::full(ne);
    let mut node_frontier = VertexSubset::full(nv);

    // One "round" per while-iteration (a full edge→node→edge alternation).
    // Direction decisions are resolved up front via `resolve_mode` so they
    // can be counted; the forced modes reproduce exactly what
    // `edge_map(.., Mode::Auto)` would have chosen.
    let mut prev_dense: Option<bool> = None;
    while !edge_frontier.is_empty() || !node_frontier.is_empty() {
        nwhy_obs::incr(Counter::CcRounds);
        nwhy_obs::observe(
            Hist::CcFrontier,
            (edge_frontier.len() + node_frontier.len()) as u64,
        );
        // active hyperedges push labels to their hypernodes
        let step_mode = resolve_mode(
            h.edges(),
            &mut edge_frontier,
            Mode::Auto,
            &mut prev_dense,
            Counter::CcSparseSteps,
            Counter::CcDenseSteps,
            Counter::CcDirectionSwitches,
        );
        let woken_nodes = edge_map(
            h.edges(),
            h.nodes(),
            &mut edge_frontier,
            &MinLabel {
                src_labels: &edge_labels,
                dst_labels: &node_labels,
            },
            step_mode,
        );
        // nodes woken now OR still pending from last round push back
        let mut active_nodes = merge(node_frontier, woken_nodes, nv);
        let step_mode = resolve_mode(
            h.nodes(),
            &mut active_nodes,
            Mode::Auto,
            &mut prev_dense,
            Counter::CcSparseSteps,
            Counter::CcDenseSteps,
            Counter::CcDirectionSwitches,
        );
        let woken_edges = edge_map(
            h.nodes(),
            h.edges(),
            &mut active_nodes,
            &MinLabel {
                src_labels: &node_labels,
                dst_labels: &edge_labels,
            },
            step_mode,
        );
        edge_frontier = woken_edges;
        node_frontier = VertexSubset::empty(nv);
    }

    HygraCcResult {
        edge_labels: edge_labels.into_iter().map(AtomicU32::into_inner).collect(),
        node_labels: node_labels.into_iter().map(AtomicU32::into_inner).collect(),
    }
}

fn merge(mut a: VertexSubset, mut b: VertexSubset, n: usize) -> VertexSubset {
    if a.is_empty() {
        return b;
    }
    if b.is_empty() {
        return a;
    }
    let mut ids: Vec<Id> = a.as_sparse().to_vec();
    ids.extend_from_slice(b.as_sparse());
    ids.sort_unstable();
    ids.dedup();
    VertexSubset::from_sparse(n, ids)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nwhy_core::algorithms::hyper_cc::hyper_cc;
    use nwhy_core::fixtures::paper_hypergraph;

    fn same_partition(a: (&[Id], &[Id]), b: (&[Id], &[Id])) -> bool {
        let av: Vec<Id> = a.0.iter().chain(a.1).copied().collect();
        let bv: Vec<Id> = b.0.iter().chain(b.1).copied().collect();
        for i in 0..av.len() {
            for j in (i + 1)..av.len() {
                if (av[i] == av[j]) != (bv[i] == bv[j]) {
                    return false;
                }
            }
        }
        true
    }

    #[test]
    fn fixture_single_component() {
        let h = paper_hypergraph();
        let r = hygra_cc(&h);
        assert_eq!(r.num_components(), 1);
        assert!(r.edge_labels.iter().all(|&l| l == 0));
    }

    #[test]
    fn matches_nwhy_hyper_cc() {
        let cases = vec![
            vec![vec![0, 1], vec![1, 2], vec![5, 6]],
            vec![vec![0], vec![1], vec![2]],
            vec![vec![], vec![0, 3], vec![3, 4], vec![7]],
        ];
        for ms in cases {
            let h = Hypergraph::from_memberships(&ms);
            let hy = hygra_cc(&h);
            let nw = hyper_cc(&h);
            assert!(
                same_partition(
                    (&hy.edge_labels, &hy.node_labels),
                    (&nw.edge_labels, &nw.node_labels)
                ),
                "{ms:?}"
            );
            assert_eq!(hy.num_components(), nw.num_components());
        }
    }

    #[test]
    fn isolated_nodes_keep_own_labels() {
        let bel = nwhy_core::BiEdgeList::from_incidences(1, 3, vec![(0, 1)]);
        let h = Hypergraph::from_biedgelist(&bel);
        let r = hygra_cc(&h);
        assert_eq!(r.node_labels[0], 1); // ne + 0
        assert_eq!(r.node_labels[1], 0); // joined e0's component
        assert_eq!(r.node_labels[2], 3); // ne + 2
        assert_eq!(r.num_components(), 3);
    }

    #[test]
    fn empty_hypergraph() {
        let h = Hypergraph::from_memberships(&[]);
        let r = hygra_cc(&h);
        assert_eq!(r.num_components(), 0);
    }
}
