//! `hygra` — a Rust re-implementation of Hygra (Shun, PPoPP 2020), the
//! practical parallel hypergraph framework the NWHy paper benchmarks
//! against in §IV (HygraBFS, HygraCC).
//!
//! Hygra extends the Ligra abstraction to hypergraphs: computation is
//! expressed as `vertex_map`/`edge_map` operations over *vertex subsets*
//! (frontiers) on the bipartite representation, with automatic switching
//! between a sparse (push) and dense (pull) traversal depending on
//! frontier size. This crate rebuilds that engine from scratch:
//!
//! - [`subset::VertexSubset`] — sparse/dense frontier representation;
//! - [`engine`] — `edge_map` with Ligra's direction heuristic and
//!   `vertex_map`;
//! - [`bfs::hygra_bfs`] — the top-down hypergraph BFS the paper compares
//!   against in Fig. 8;
//! - [`cc::hygra_cc`] — the label-propagation hypergraph CC of Fig. 7.
//!
//! Re-implementing the baseline in the same language/runtime as NWHy puts
//! the Fig. 7–8 comparisons on equal footing (see DESIGN.md's
//! substitution table).
//!
//! # Examples
//!
//! ```
//! use nwhy_core::Hypergraph;
//!
//! let h = Hypergraph::from_memberships(&[vec![0, 1], vec![1, 2], vec![3]]);
//! let bfs = hygra::hygra_bfs(&h, 0);
//! assert_eq!(bfs.edge_levels, vec![0, 2, u32::MAX]);
//! let cc = hygra::hygra_cc(&h);
//! assert_eq!(cc.num_components(), 2);
//! ```

#![forbid(unsafe_code)]

pub mod bfs;
pub mod cc;
pub mod engine;
pub mod kcore;
pub mod mis;
pub mod pagerank;
pub mod subset;

pub use bfs::{hygra_bfs, hygra_bfs_ctx, HygraBfsResult};
pub use cc::{hygra_cc, hygra_cc_ctx, HygraCcResult};
pub use kcore::hygra_kcore;
pub use mis::hygra_mis;
pub use pagerank::hygra_pagerank;
pub use subset::VertexSubset;
