//! Traversal counter fixture tests: the Ligra direction heuristic
//! (`|frontier| + out_edges > m / THRESHOLD_DENOM`) must be observable
//! through the BFS/CC step counters, with the switch point pinned on a
//! hand-traceable hub-and-spokes hypergraph.
#![cfg(feature = "obs")]

use hygra::bfs::hygra_bfs_with_mode;
use hygra::engine::{choose_dense, Mode, THRESHOLD_DENOM};
use hygra::subset::VertexSubset;
use nwhy_core::Hypergraph;
use nwhy_obs::Counter;
use std::sync::Mutex;

/// The obs registry is process-global; serialize tests that reset it.
static GATE: Mutex<()> = Mutex::new(());

fn isolated<R>(f: impl FnOnce() -> R) -> R {
    let _g = GATE.lock().unwrap_or_else(|e| e.into_inner());
    nwhy_obs::reset();
    f()
}

/// Hub-and-spokes: hyperedge 0 = {0..=k}, hyperedge i = {i} for
/// i in 1..=k. Incidences m = 2k + 1.
fn hub_and_spokes(k: u32) -> Hypergraph {
    let mut ms: Vec<Vec<u32>> = vec![(0..=k).collect()];
    for i in 1..=k {
        ms.push(vec![i]);
    }
    Hypergraph::from_memberships(&ms)
}

/// `choose_dense` must flip exactly when `|frontier| + out_edges`
/// crosses `m / 20`: with k = 100 singleton spokes (m = 201, threshold
/// 10), a frontier of 5 spokes scores 10 (sparse) and 6 spokes score 12
/// (dense).
#[test]
fn choose_dense_flips_at_documented_threshold() {
    assert_eq!(THRESHOLD_DENOM, 20);
    let h = hub_and_spokes(100);
    let adj = h.edges();
    assert_eq!(adj.num_edges(), 201);
    let mut at = VertexSubset::from_sparse(h.num_hyperedges(), (1..=5).collect());
    assert!(!choose_dense(adj, &mut at, Mode::Auto), "score 10 <= 10");
    let mut above = VertexSubset::from_sparse(h.num_hyperedges(), (1..=6).collect());
    assert!(choose_dense(adj, &mut above, Mode::Auto), "score 12 > 10");
    // Forced modes ignore the heuristic entirely.
    assert!(!choose_dense(adj, &mut above, Mode::ForceSparse));
    assert!(choose_dense(adj, &mut at, Mode::ForceDense));
}

/// Auto BFS from a spoke: two cheap sparse half-steps (spoke → its node
/// → the hub), then the hub's frontier score (1 + 101 = 102 > 10) flips
/// the traversal dense for the remaining three half-steps. Exactly one
/// direction switch, five rounds.
#[test]
fn auto_bfs_switches_direction_once_on_hub_fixture() {
    isolated(|| {
        let h = hub_and_spokes(100);
        let r = hygra_bfs_with_mode(&h, 1, Mode::Auto);
        // sanity: everything is reachable from spoke 1 through the hub
        assert!(r.edge_levels.iter().all(|&l| l != u32::MAX));
        assert_eq!(nwhy_obs::counter_value(Counter::BfsRounds), 5);
        assert_eq!(nwhy_obs::counter_value(Counter::BfsSparseSteps), 2);
        assert_eq!(nwhy_obs::counter_value(Counter::BfsDenseSteps), 3);
        assert_eq!(nwhy_obs::counter_value(Counter::BfsDirectionSwitches), 1);
    });
}

/// Forced-sparse BFS on the same fixture takes every half-step sparse
/// and never switches.
#[test]
fn forced_sparse_bfs_never_switches() {
    isolated(|| {
        let h = hub_and_spokes(100);
        let _ = hygra_bfs_with_mode(&h, 1, Mode::ForceSparse);
        assert_eq!(nwhy_obs::counter_value(Counter::BfsRounds), 5);
        assert_eq!(nwhy_obs::counter_value(Counter::BfsSparseSteps), 5);
        assert_eq!(nwhy_obs::counter_value(Counter::BfsDenseSteps), 0);
        assert_eq!(nwhy_obs::counter_value(Counter::BfsDirectionSwitches), 0);
    });
}

/// CC's label-propagation loop reports one round per full alternation
/// and its frontier histogram observes every round.
#[test]
fn cc_counts_label_propagation_rounds() {
    isolated(|| {
        let h = hub_and_spokes(8);
        let r = hygra::hygra_cc(&h);
        assert_eq!(r.num_components(), 1);
        let rounds = nwhy_obs::counter_value(Counter::CcRounds);
        assert!(rounds >= 2, "hub fixture needs ≥ 2 rounds, got {rounds}");
        let steps = nwhy_obs::counter_value(Counter::CcSparseSteps)
            + nwhy_obs::counter_value(Counter::CcDenseSteps);
        assert_eq!(steps, 2 * rounds, "two half-steps per round");
        let snap = nwhy_obs::snapshot();
        let hist = snap.hists.iter().find(|h| h.name == "cc.frontier").unwrap();
        assert_eq!(hist.count, rounds);
    });
}
