//! Windowed-quantile merge math: rotation fixtures pinning exact bucket
//! counts, and a property test checking that quantiles read from the
//! merged sub-windows agree with quantiles of the concatenated raw
//! samples to within one power-of-two bucket.

use nwhy_obs::window::{bucket_upper_bound, WindowedHist, SUB_WINDOWS};
use proptest::prelude::*;

/// The pow2 bucket index a value lands in (same law as the histograms).
fn bucket_of(v: u64) -> usize {
    64 - v.leading_zeros() as usize
}

#[test]
fn fixture_bucket_counts_across_three_rotations() {
    let w = WindowedHist::new(50);
    // epoch 0 (ticks 0..50): 5, 5, 9
    w.observe(0, 5);
    w.observe(10, 5);
    w.observe(49, 9);
    // epoch 1: 70 (bucket 7), 2 (bucket 2)
    w.observe(50, 70);
    w.observe(99, 2);
    // epoch 2: 1024 (bucket 11)
    w.observe(100, 1024);
    let m = w.merged(149);
    assert_eq!(m.count, 6);
    assert_eq!(m.sum, 5 + 5 + 9 + 70 + 2 + 1024);
    assert_eq!(m.buckets[bucket_of(5)], 2);
    assert_eq!(m.buckets[bucket_of(9)], 1);
    assert_eq!(m.buckets[bucket_of(2)], 1);
    assert_eq!(m.buckets[bucket_of(70)], 1);
    assert_eq!(m.buckets[bucket_of(1024)], 1);
    assert_eq!(m.max, 1024);
}

#[test]
fn fixture_full_ring_rotation_displaces_oldest_epoch_exactly() {
    let w = WindowedHist::new(10);
    // One observation of value 2^e in each of epochs 0..8 — nine epochs,
    // one more than the ring holds.
    for epoch in 0..=SUB_WINDOWS as u64 {
        w.observe(epoch * 10, 1u64 << epoch);
    }
    let m = w.merged(SUB_WINDOWS as u64 * 10);
    // Epoch 0's sample (value 1) was displaced when epoch 8 reclaimed
    // its slot; epochs 1..=8 survive.
    assert_eq!(m.count, SUB_WINDOWS as u64);
    assert_eq!(m.buckets[bucket_of(1)], 0, "epoch 0 displaced");
    for epoch in 1..=SUB_WINDOWS {
        assert_eq!(
            m.buckets[bucket_of(1u64 << epoch)],
            1,
            "epoch {epoch} sample must survive"
        );
    }
    assert_eq!(m.max, 1u64 << SUB_WINDOWS);
}

#[test]
fn fixture_reader_rotation_without_new_writes() {
    // Reads far in the future must see an empty window even though no
    // write ever rotated the slots.
    let w = WindowedHist::new(10);
    w.observe(0, 999);
    assert_eq!(w.merged(5).count, 1);
    assert_eq!(w.merged(10_000).count, 0);
    assert_eq!(w.merged(10_000).quantile(0.5), None);
}

/// Samples paired with a tick offset inside the trailing window.
fn arb_samples() -> impl Strategy<Value = Vec<(u64, u64)>> {
    // (tick within one window width, value < 2^32)
    proptest::collection::vec((0u64..80, 0u64..(1 << 32)), 1..200)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Window-merged quantiles equal quantiles of the concatenated raw
    /// samples to within one pow2 bucket. (The merge preserves bucket
    /// counts exactly, so the bucket indices in fact match exactly; the
    /// one-bucket tolerance is the contract the satellite pins.)
    #[test]
    fn prop_merged_quantiles_match_concatenated_samples(samples in arb_samples()) {
        let w = WindowedHist::new(10); // window = 80 ticks ⊇ all samples
        for &(tick, value) in &samples {
            w.observe(tick, value);
        }
        let m = w.merged(79);
        prop_assert_eq!(m.count, samples.len() as u64);

        let mut sorted: Vec<u64> = samples.iter().map(|&(_, v)| v).collect();
        sorted.sort_unstable();
        for q in [0.5, 0.9, 0.99, 1.0] {
            // lint: sample counts stay far below 2^53
            #[allow(clippy::cast_precision_loss, clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            let exact = sorted[rank - 1];
            let merged = m.quantile(q).expect("non-empty window");
            let diff = bucket_of(merged).abs_diff(bucket_of(exact));
            prop_assert!(
                diff <= 1,
                "q={q}: merged {merged} (bucket {}) vs exact {exact} (bucket {})",
                bucket_of(merged),
                bucket_of(exact)
            );
            // The merged answer is the bucket's inclusive upper bound,
            // so it never under-reports the exact sample.
            prop_assert!(merged >= exact || bucket_of(merged) == bucket_of(exact));
        }
    }

    /// max is exact (not bucketed) and the p100 quantile never exceeds
    /// the bucket bound above it.
    #[test]
    fn prop_max_is_exact(samples in arb_samples()) {
        let w = WindowedHist::new(10);
        for &(tick, value) in &samples {
            w.observe(tick, value);
        }
        let m = w.merged(79);
        let true_max = samples.iter().map(|&(_, v)| v).max().unwrap();
        prop_assert_eq!(m.max, true_max);
        let p100 = m.quantile(1.0).expect("non-empty");
        prop_assert!(p100 >= true_max);
        prop_assert!(p100 <= bucket_upper_bound(bucket_of(true_max)));
    }
}
