//! The disabled build must be observably inert: this binary only
//! compiles with `--no-default-features` and proves every entry point is
//! a no-op — `Span` is a ZST, counters never accumulate, snapshots and
//! traces are empty. Combined with `enabled()` being `const false`
//! (which deletes guarded worker-local tallies at compile time), the
//! instrumented kernels run the same code paths with zero added atomic
//! traffic.

#![cfg(not(feature = "enabled"))]

use nwhy_obs::{Counter, Hist, Span};

#[test]
fn enabled_is_const_false() {
    const ON: bool = nwhy_obs::enabled();
    assert!(!ON);
}

#[test]
fn span_is_a_zst() {
    assert_eq!(std::mem::size_of::<Span>(), 0);
}

#[test]
fn counters_never_accumulate() {
    nwhy_obs::add(Counter::SlinePairsExamined, 1_000);
    nwhy_obs::incr(Counter::BfsRounds);
    assert_eq!(nwhy_obs::counter_value(Counter::SlinePairsExamined), 0);
    assert_eq!(nwhy_obs::counter_value(Counter::BfsRounds), 0);
}

#[test]
fn everything_snapshots_empty() {
    let _span = nwhy_obs::span("noop.outer");
    {
        let _inner = nwhy_obs::span("noop.inner");
        nwhy_obs::observe(Hist::BfsFrontierEdges, 42);
        nwhy_obs::add(Counter::IoBytesRead, 7);
    }
    drop(_span);
    let snap = nwhy_obs::snapshot();
    assert!(snap.is_empty());
    assert!(nwhy_obs::take_trace().is_empty());
    // reset() must also be callable without a registry materializing.
    nwhy_obs::reset();
    assert!(nwhy_obs::snapshot().is_empty());
}
