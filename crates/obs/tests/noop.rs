//! The disabled build must be observably inert: this binary only
//! compiles with `--no-default-features` and proves every entry point is
//! a no-op — `Span` is a ZST, counters never accumulate, snapshots and
//! traces are empty. Combined with `enabled()` being `const false`
//! (which deletes guarded worker-local tallies at compile time), the
//! instrumented kernels run the same code paths with zero added atomic
//! traffic.

#![cfg(not(feature = "enabled"))]

use nwhy_obs::{Counter, CtxGuard, Hist, RequestCtx, Span};

#[test]
fn enabled_is_const_false() {
    const ON: bool = nwhy_obs::enabled();
    assert!(!ON);
}

#[test]
fn span_is_a_zst() {
    assert_eq!(std::mem::size_of::<Span>(), 0);
}

#[test]
fn request_ctx_is_a_zst() {
    // The telemetry-backbone additions must cost nothing when disabled:
    // the context handle and its guard are ZSTs, ids are always 0.
    assert_eq!(std::mem::size_of::<RequestCtx>(), 0);
    assert_eq!(std::mem::size_of::<CtxGuard>(), 0);
    let ctx = RequestCtx::new();
    assert_eq!(ctx.id(), 0);
    assert_eq!(RequestCtx::from_id(77).id(), 0);
    {
        let _g = ctx.enter();
        assert_eq!(nwhy_obs::current_request_id(), 0);
    }
}

#[test]
fn flight_recorder_is_inert() {
    nwhy_obs::flight_configure(Some(0), Some(std::path::Path::new("/nonexistent")));
    nwhy_obs::set_manual_ticks(true);
    nwhy_obs::advance_ticks(1_000);
    nwhy_obs::observe_latency("noop.op", 42);
    {
        let _s = nwhy_obs::span("noop.flight");
        nwhy_obs::incr(Counter::BfsRounds);
    }
    assert!(nwhy_obs::flight_drain_last(64).is_empty());
    assert_eq!(nwhy_obs::flight_chrome_trace(64), "{\"traceEvents\":[]}");
    assert!(nwhy_obs::snapshot().quantiles.is_empty());
}

#[test]
fn counters_never_accumulate() {
    nwhy_obs::add(Counter::SlinePairsExamined, 1_000);
    nwhy_obs::incr(Counter::BfsRounds);
    assert_eq!(nwhy_obs::counter_value(Counter::SlinePairsExamined), 0);
    assert_eq!(nwhy_obs::counter_value(Counter::BfsRounds), 0);
}

#[test]
fn everything_snapshots_empty() {
    let _span = nwhy_obs::span("noop.outer");
    {
        let _inner = nwhy_obs::span("noop.inner");
        nwhy_obs::observe(Hist::BfsFrontierEdges, 42);
        nwhy_obs::add(Counter::IoBytesRead, 7);
    }
    drop(_span);
    let snap = nwhy_obs::snapshot();
    assert!(snap.is_empty());
    assert!(nwhy_obs::take_trace().is_empty());
    // reset() must also be callable without a registry materializing.
    nwhy_obs::reset();
    assert!(nwhy_obs::snapshot().is_empty());
}
