//! Behavior of the live registry. The registry is process-global, so
//! every test serializes on one mutex and starts from `reset()`.

#![cfg(all(feature = "enabled", not(loom)))]

use std::sync::Mutex;

use nwhy_obs::{json, Counter, Hist};

static GATE: Mutex<()> = Mutex::new(());

fn isolated<R>(f: impl FnOnce() -> R) -> R {
    let _guard = GATE.lock().unwrap_or_else(|p| p.into_inner());
    nwhy_obs::reset();
    let out = f();
    nwhy_obs::reset();
    out
}

#[test]
fn enabled_is_const_true() {
    // Evaluated at compile time: proves enabled() is const-foldable,
    // which is what lets `if nwhy_obs::enabled()` guards vanish.
    const { assert!(nwhy_obs::enabled()) }
}

#[test]
fn counters_accumulate_and_reset() {
    isolated(|| {
        nwhy_obs::add(Counter::SlinePairsExamined, 5);
        nwhy_obs::incr(Counter::SlinePairsExamined);
        nwhy_obs::add(Counter::IoBytesRead, 0); // zero adds are dropped
        assert_eq!(nwhy_obs::counter_value(Counter::SlinePairsExamined), 6);
        let snap = nwhy_obs::snapshot();
        assert_eq!(snap.counter("sline.pairs_examined"), Some(6));
        assert_eq!(snap.counter("io.bytes_read"), None);
        nwhy_obs::reset();
        assert_eq!(nwhy_obs::counter_value(Counter::SlinePairsExamined), 0);
    });
}

#[test]
fn counters_sum_across_threads() {
    isolated(|| {
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1_000 {
                        nwhy_obs::incr(Counter::SlineQueuePushes);
                    }
                });
            }
        });
        assert_eq!(nwhy_obs::counter_value(Counter::SlineQueuePushes), 4_000);
    });
}

#[test]
fn spans_nest_into_slash_paths() {
    isolated(|| {
        {
            let _outer = nwhy_obs::span("phase.outer");
            {
                let _inner = nwhy_obs::span("phase.inner");
            }
            {
                let _inner = nwhy_obs::span("phase.inner");
            }
        }
        // A sibling root span with the same leaf name as the child:
        // interning is by (parent, name), so it gets its own path.
        {
            let _lone = nwhy_obs::span("phase.inner");
        }
        let snap = nwhy_obs::snapshot();
        let nested = snap.span("phase.outer/phase.inner").expect("nested path");
        assert_eq!(nested.count, 2);
        assert_eq!(snap.span("phase.outer").expect("outer").count, 1);
        assert_eq!(snap.span("phase.inner").expect("root sibling").count, 1);
        assert!(nested.total_seconds >= 0.0);
    });
}

#[test]
fn spans_feed_the_chrome_trace() {
    isolated(|| {
        {
            let _a = nwhy_obs::span("trace.a");
            let _b = nwhy_obs::span("trace.b");
        }
        let events = nwhy_obs::take_trace();
        let names: Vec<&str> = events.iter().map(|e| e.name).collect();
        // Inner span drops first, so it lands first.
        assert_eq!(names, ["trace.b", "trace.a"]);
        // take_trace drains.
        assert!(nwhy_obs::take_trace().is_empty());
        // And the rendering is parseable JSON.
        let doc = nwhy_obs::to_chrome_trace(&events);
        let v = json::parse(&doc).expect("chrome trace parses");
        assert_eq!(v.get("traceEvents").unwrap().as_array().unwrap().len(), 2);
    });
}

#[test]
fn histograms_bucket_by_power_of_two() {
    isolated(|| {
        for v in [0, 1, 2, 3, 8, 1_000] {
            nwhy_obs::observe(Hist::BfsFrontierEdges, v);
        }
        let snap = nwhy_obs::snapshot();
        let h = snap
            .hists
            .iter()
            .find(|h| h.name == "bfs.frontier_edges")
            .expect("histogram present");
        assert_eq!(h.count, 6);
        assert_eq!(h.sum, 1_014);
        assert_eq!(h.max, 1_000);
        // 0 | 1 | {2,3} | 8 | 1000 → buckets (0,1) (1,1) (3,2) (15,1) (1023,1)
        assert_eq!(h.buckets, vec![(0, 1), (1, 1), (3, 2), (15, 1), (1023, 1)]);
    });
}

#[test]
fn live_snapshot_json_round_trips() {
    isolated(|| {
        nwhy_obs::add(Counter::SlineEdgesEmitted, 12);
        nwhy_obs::observe(Hist::CcFrontier, 4);
        {
            let _s = nwhy_obs::span("roundtrip.phase");
        }
        let snap = nwhy_obs::snapshot();
        let v = json::parse(&snap.to_json()).expect("metrics JSON parses");
        assert_eq!(
            v.get("counters")
                .unwrap()
                .get("sline.edges_emitted")
                .unwrap()
                .as_u64(),
            Some(12)
        );
        let spans = v.get("spans").unwrap().as_array().unwrap();
        assert!(spans
            .iter()
            .any(|s| s.get("path").unwrap().as_str() == Some("roundtrip.phase")));
        let hists = v.get("histograms").unwrap().as_array().unwrap();
        assert_eq!(hists[0].get("name").unwrap().as_str(), Some("cc.frontier"));
    });
}
