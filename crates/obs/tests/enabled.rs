//! Behavior of the live registry. The registry is process-global, so
//! every test serializes on one mutex and starts from `reset()`.

#![cfg(all(feature = "enabled", not(loom)))]

use std::sync::Mutex;

use nwhy_obs::{json, Counter, FlightKind, Hist, RequestCtx};

static GATE: Mutex<()> = Mutex::new(());

fn isolated<R>(f: impl FnOnce() -> R) -> R {
    let _guard = GATE.lock().unwrap_or_else(|p| p.into_inner());
    nwhy_obs::reset();
    let out = f();
    nwhy_obs::reset();
    out
}

#[test]
fn enabled_is_const_true() {
    // Evaluated at compile time: proves enabled() is const-foldable,
    // which is what lets `if nwhy_obs::enabled()` guards vanish.
    const { assert!(nwhy_obs::enabled()) }
}

#[test]
fn counters_accumulate_and_reset() {
    isolated(|| {
        nwhy_obs::add(Counter::SlinePairsExamined, 5);
        nwhy_obs::incr(Counter::SlinePairsExamined);
        nwhy_obs::add(Counter::IoBytesRead, 0); // zero adds are dropped
        assert_eq!(nwhy_obs::counter_value(Counter::SlinePairsExamined), 6);
        let snap = nwhy_obs::snapshot();
        assert_eq!(snap.counter("sline.pairs_examined"), Some(6));
        assert_eq!(snap.counter("io.bytes_read"), None);
        nwhy_obs::reset();
        assert_eq!(nwhy_obs::counter_value(Counter::SlinePairsExamined), 0);
    });
}

#[test]
fn counters_sum_across_threads() {
    isolated(|| {
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1_000 {
                        nwhy_obs::incr(Counter::SlineQueuePushes);
                    }
                });
            }
        });
        assert_eq!(nwhy_obs::counter_value(Counter::SlineQueuePushes), 4_000);
    });
}

#[test]
fn spans_nest_into_slash_paths() {
    isolated(|| {
        {
            let _outer = nwhy_obs::span("phase.outer");
            {
                let _inner = nwhy_obs::span("phase.inner");
            }
            {
                let _inner = nwhy_obs::span("phase.inner");
            }
        }
        // A sibling root span with the same leaf name as the child:
        // interning is by (parent, name), so it gets its own path.
        {
            let _lone = nwhy_obs::span("phase.inner");
        }
        let snap = nwhy_obs::snapshot();
        let nested = snap.span("phase.outer/phase.inner").expect("nested path");
        assert_eq!(nested.count, 2);
        assert_eq!(snap.span("phase.outer").expect("outer").count, 1);
        assert_eq!(snap.span("phase.inner").expect("root sibling").count, 1);
        assert!(nested.total_seconds >= 0.0);
    });
}

#[test]
fn spans_feed_the_chrome_trace() {
    isolated(|| {
        {
            let _a = nwhy_obs::span("trace.a");
            let _b = nwhy_obs::span("trace.b");
        }
        let events = nwhy_obs::take_trace();
        let names: Vec<&str> = events.iter().map(|e| e.name).collect();
        // Inner span drops first, so it lands first.
        assert_eq!(names, ["trace.b", "trace.a"]);
        // take_trace drains.
        assert!(nwhy_obs::take_trace().is_empty());
        // And the rendering is parseable JSON.
        let doc = nwhy_obs::to_chrome_trace(&events);
        let v = json::parse(&doc).expect("chrome trace parses");
        assert_eq!(v.get("traceEvents").unwrap().as_array().unwrap().len(), 2);
    });
}

#[test]
fn histograms_bucket_by_power_of_two() {
    isolated(|| {
        for v in [0, 1, 2, 3, 8, 1_000] {
            nwhy_obs::observe(Hist::BfsFrontierEdges, v);
        }
        let snap = nwhy_obs::snapshot();
        let h = snap
            .hists
            .iter()
            .find(|h| h.name == "bfs.frontier_edges")
            .expect("histogram present");
        assert_eq!(h.count, 6);
        assert_eq!(h.sum, 1_014);
        assert_eq!(h.max, 1_000);
        // 0 | 1 | {2,3} | 8 | 1000 → buckets (0,1) (1,1) (3,2) (15,1) (1023,1)
        assert_eq!(h.buckets, vec![(0, 1), (1, 1), (3, 2), (15, 1), (1023, 1)]);
    });
}

#[test]
fn repeated_snapshots_are_identical() {
    // Satellite: snapshot ordering is deterministic — two snapshots of
    // the same registry state must be equal, and every rendering
    // byte-identical (so BENCH_*.json diffs never churn).
    isolated(|| {
        nwhy_obs::add(Counter::IoBytesRead, 11);
        nwhy_obs::add(Counter::SlinePairsExamined, 3);
        nwhy_obs::observe(Hist::CcFrontier, 9);
        nwhy_obs::observe(Hist::BfsFrontierEdges, 2);
        nwhy_obs::observe_latency("op.b", 10);
        nwhy_obs::observe_latency("op.a", 20);
        {
            let _s = nwhy_obs::span("snap.z");
        }
        {
            let _s = nwhy_obs::span("snap.a");
        }
        let a = nwhy_obs::snapshot();
        let b = nwhy_obs::snapshot();
        assert_eq!(a, b);
        assert_eq!(a.to_json(), b.to_json());
        assert_eq!(a.to_text(), b.to_text());
        assert_eq!(
            nwhy_obs::render_prometheus(&a),
            nwhy_obs::render_prometheus(&b)
        );
        // and sections are sorted by key regardless of recording order
        let counter_names: Vec<&str> = a.counters.iter().map(|c| c.name).collect();
        let mut sorted = counter_names.clone();
        sorted.sort_unstable();
        assert_eq!(counter_names, sorted);
        let ops: Vec<&str> = a.quantiles.iter().map(|q| q.op.as_str()).collect();
        assert_eq!(ops, ["op.a", "op.b", "snap.a", "snap.z"]);
        let paths: Vec<&str> = a.spans.iter().map(|s| s.path.as_str()).collect();
        assert_eq!(paths, ["snap.a", "snap.z"]);
    });
}

#[test]
fn windowed_quantiles_surface_in_snapshot_and_prom() {
    isolated(|| {
        nwhy_obs::set_manual_ticks(true);
        for _ in 0..98 {
            nwhy_obs::observe_latency("query.sline", 100);
        }
        nwhy_obs::observe_latency("query.sline", 5_000);
        nwhy_obs::observe_latency("query.sline", 5_000);
        let snap = nwhy_obs::snapshot();
        let q = snap.quantile("query.sline").expect("windowed op present");
        assert_eq!(q.count, 100);
        assert_eq!(q.p50, Some(127)); // pow2 bucket 64..127
        assert_eq!(q.p99, Some(8191)); // pow2 bucket 4096..8191
        assert_eq!(q.max, 5_000);
        let doc = nwhy_obs::render_prometheus(&snap);
        assert!(
            doc.contains("nwhy_op_latency_microseconds{op=\"query.sline\",quantile=\"0.99\"} 8191")
        );
        // The window slides: 9 s of manual ticks later (sub-windows are
        // 1 s), the samples have aged out and quantiles go null-shaped.
        nwhy_obs::advance_ticks(9_000_000);
        let stale = nwhy_obs::snapshot();
        let q = stale.quantile("query.sline").expect("op name persists");
        assert_eq!(q.count, 0);
        assert_eq!(q.p99, None);
        let v = json::parse(&stale.to_json()).expect("stale snapshot parses");
        let quantiles = v.get("quantiles").unwrap().as_array().unwrap();
        assert_eq!(quantiles[0].get("p99"), Some(&json::Value::Null));
    });
}

#[test]
fn flight_recorder_captures_span_and_counter_events() {
    isolated(|| {
        nwhy_obs::set_manual_ticks(true);
        nwhy_obs::advance_ticks(42);
        {
            let _s = nwhy_obs::span("flight.phase");
            nwhy_obs::add(Counter::BfsRounds, 3);
        }
        let events = nwhy_obs::flight_drain_last(16);
        let kinds: Vec<FlightKind> = events.iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            [
                FlightKind::SpanOpen,
                FlightKind::CounterDelta,
                FlightKind::SpanClose
            ]
        );
        assert!(
            events.iter().all(|e| e.tick == 42),
            "manual ticks stamp events"
        );
        let delta = &events[1];
        assert_eq!(delta.id, u32::try_from(Counter::BfsRounds.index()).unwrap());
        assert_eq!(delta.value, 3);
        // the rendering is parseable Chrome-trace JSON naming the span
        let doc = nwhy_obs::flight_chrome_trace(16);
        let v = json::parse(&doc).expect("flight chrome trace parses");
        let rendered = v.get("traceEvents").unwrap().as_array().unwrap();
        assert_eq!(rendered.len(), 3);
        assert!(rendered
            .iter()
            .any(|e| e.get("name").unwrap().as_str() == Some("flight.phase")));
        // drain is a snapshot, not a drain-and-clear: reset clears it
        assert_eq!(nwhy_obs::flight_drain_last(16).len(), 3);
        nwhy_obs::reset();
        assert!(nwhy_obs::flight_drain_last(16).is_empty());
    });
}

#[test]
fn flight_events_partition_by_request_ctx() {
    // The tentpole's attribution fixture at the obs layer: two
    // interleaved "queries" on concurrent threads, each under its own
    // RequestCtx — every span event in the recorder dump must carry the
    // id of the query that produced it.
    isolated(|| {
        let ctx_a = RequestCtx::new();
        let ctx_b = RequestCtx::new();
        std::thread::scope(|s| {
            for ctx in [ctx_a, ctx_b] {
                s.spawn(move || {
                    let _g = ctx.enter();
                    for _ in 0..10 {
                        let _span = nwhy_obs::span("query.run");
                        nwhy_obs::incr(Counter::SlineEdgesEmitted);
                    }
                });
            }
        });
        let events = nwhy_obs::flight_drain_last(256);
        assert_eq!(events.len(), 60, "2 queries × 10 iterations × 3 events");
        let by_a = events.iter().filter(|e| e.req == ctx_a.id()).count();
        let by_b = events.iter().filter(|e| e.req == ctx_b.id()).count();
        assert_eq!(by_a, 30, "query A owns exactly its own events");
        assert_eq!(by_b, 30, "query B owns exactly its own events");
        // ids partition: nothing unattributed, nothing cross-tagged
        assert!(events
            .iter()
            .all(|e| e.req == ctx_a.id() || e.req == ctx_b.id()));
        // and within one request id, the thread is consistent
        for ctx in [ctx_a, ctx_b] {
            let tids: Vec<u64> = events
                .iter()
                .filter(|e| e.req == ctx.id())
                .map(|e| e.tid)
                .collect();
            assert!(tids.windows(2).all(|w| w[0] == w[1]));
        }
    });
}

#[test]
fn anomaly_hook_dumps_the_ring() {
    isolated(|| {
        let path =
            std::env::temp_dir().join(format!("nwhy-obs-anomaly-{}.json", std::process::id()));
        let _ = std::fs::remove_file(&path);
        nwhy_obs::flight_configure(Some(0), Some(&path));
        {
            let _s = nwhy_obs::span("slow.phase");
        }
        // threshold 0 ⇒ every span close trips the dump
        let doc = std::fs::read_to_string(&path).expect("anomaly dump written");
        let v = json::parse(&doc).expect("dump is valid chrome trace JSON");
        assert!(v
            .get("traceEvents")
            .unwrap()
            .as_array()
            .unwrap()
            .iter()
            .any(|e| e.get("name").unwrap().as_str() == Some("slow.phase")));
        // unconfigure so later tests never trip it
        nwhy_obs::flight_configure(None, None);
        let _ = std::fs::remove_file(&path);
    });
}

#[test]
fn live_snapshot_json_round_trips() {
    isolated(|| {
        nwhy_obs::add(Counter::SlineEdgesEmitted, 12);
        nwhy_obs::observe(Hist::CcFrontier, 4);
        {
            let _s = nwhy_obs::span("roundtrip.phase");
        }
        let snap = nwhy_obs::snapshot();
        let v = json::parse(&snap.to_json()).expect("metrics JSON parses");
        assert_eq!(
            v.get("counters")
                .unwrap()
                .get("sline.edges_emitted")
                .unwrap()
                .as_u64(),
            Some(12)
        );
        let spans = v.get("spans").unwrap().as_array().unwrap();
        assert!(spans
            .iter()
            .any(|s| s.get("path").unwrap().as_str() == Some("roundtrip.phase")));
        let hists = v.get("histograms").unwrap().as_array().unwrap();
        assert_eq!(hists[0].get("name").unwrap().as_str(), Some("cc.frontier"));
    });
}
