//! Loom model tests for the sharded counter core.
//!
//! Only built under the loom cfg:
//!
//! ```text
//! RUSTFLAGS="--cfg loom" cargo test -p nwhy-obs --test loom --release
//! ```
//!
//! Under `--cfg loom` the crate's registry (spans, histograms, trace
//! buffer) is compiled out — the primitives concurrent code hammers are
//! model-checked directly: [`ShardedU64`] (rayon counter bumps) and
//! [`FlightRing`] (the flight recorder's seqlock writer/drain pair).
//! `Box::leak` gives spawned threads `'static` access; the leak is
//! bounded by the explored-schedule count (test-only binary).

#![cfg(loom)]

use nwhy_obs::ring::{FlightEvent, FlightKind, FlightRing};
use nwhy_obs::sharded::ShardedU64;

/// Two writers on distinct shards: no bump is ever lost. (A concurrent
/// `sum()` would add 16 interleaving-relevant loads and blow up the
/// schedule space, so the reader runs after the joins — the join edge is
/// exactly the happens-before the API documents for `sum`.)
#[test]
fn loom_sharded_bumps_never_lost() {
    loom::model(|| {
        let c: &'static ShardedU64 = Box::leak(Box::new(ShardedU64::new()));

        let w1 = loom::thread::spawn(move || {
            c.add_to_shard(0, 1);
            c.add_to_shard(0, 2);
        });
        let w2 = loom::thread::spawn(move || {
            c.add_to_shard(1, 4);
        });
        w1.join().unwrap();
        w2.join().unwrap();
        assert_eq!(c.sum(), 7, "all bumps must land after join");
    });
}

/// Two writers racing on the *same* shard: fetch_add must not drop
/// either increment.
#[test]
fn loom_same_shard_contention() {
    loom::model(|| {
        let c: &'static ShardedU64 = Box::leak(Box::new(ShardedU64::new()));

        let handles: Vec<_> = (0..2)
            .map(|_| loom::thread::spawn(move || c.add_to_shard(3, 1)))
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.sum(), 2);
    });
}

/// Shard indices beyond the slab are masked, also under the model.
#[test]
fn loom_shard_masking() {
    loom::model(|| {
        let c = ShardedU64::new();
        c.add_to_shard(usize::MAX, 9);
        assert_eq!(c.sum(), 9);
    });
}

/// A self-consistent flight event: `value` and `tick` both encode the
/// writer id, so a torn read (payload words from two different writes)
/// is detectable.
fn tagged(writer: u64) -> FlightEvent {
    FlightEvent {
        kind: FlightKind::SpanClose,
        // lint: writer ids in the model are 1 or 2
        #[allow(clippy::cast_possible_truncation)]
        id: writer as u32,
        tick: writer * 100,
        req: writer,
        value: writer * 1_000,
        tid: writer,
    }
}

fn assert_untorn(e: &FlightEvent) {
    let w = e.req;
    assert!(w == 1 || w == 2, "unknown writer tag: {e:?}");
    assert_eq!(u64::from(e.id), w, "torn id/req pair: {e:?}");
    assert_eq!(e.tick, w * 100, "torn tick: {e:?}");
    assert_eq!(e.value, w * 1_000, "torn value: {e:?}");
    assert_eq!(e.tid, w, "torn tid: {e:?}");
}

/// The seqlock ring's writer/drain pair (the satellite's model): one
/// writer races a concurrent drain on a capacity-2 ring. Any event the
/// racing drain surfaces must be internally consistent, and after the
/// join the drain must see exactly the published event, untorn.
#[test]
fn loom_flight_ring_drain_races_writer() {
    loom::model(|| {
        let r: &'static FlightRing = Box::leak(Box::new(FlightRing::new(2)));

        let w = loom::thread::spawn(move || r.record(tagged(1)));
        // Concurrent drain: may see zero or one event, never a torn one.
        for e in r.drain_last(2) {
            assert_untorn(&e);
        }
        w.join().unwrap();
        let settled = r.drain_last(2);
        assert_eq!(settled.len(), 1, "published event must be visible");
        assert_untorn(&settled[0]);
    });
}

/// Two writers racing on the ticket counter and publishing into a
/// capacity-2 ring (main thread doubles as the second writer to keep
/// the vendored scheduler's interleaving space inside its execution
/// cap): the drain after the join sees both events, each untorn.
#[test]
fn loom_flight_ring_two_writers_never_tear() {
    loom::model(|| {
        let r: &'static FlightRing = Box::leak(Box::new(FlightRing::new(2)));

        let w1 = loom::thread::spawn(move || r.record(tagged(1)));
        r.record(tagged(2));
        w1.join().unwrap();
        let settled = r.drain_last(2);
        assert_eq!(settled.len(), 2);
        for e in &settled {
            assert_untorn(e);
        }
        let tags: Vec<u64> = settled.iter().map(|e| e.req).collect();
        assert!(
            tags == [1, 2] || tags == [2, 1],
            "both writers must land exactly once: {tags:?}"
        );
    });
}
