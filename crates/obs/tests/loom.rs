//! Loom model tests for the sharded counter core.
//!
//! Only built under the loom cfg:
//!
//! ```text
//! RUSTFLAGS="--cfg loom" cargo test -p nwhy-obs --test loom --release
//! ```
//!
//! Under `--cfg loom` the crate's registry (spans, histograms, trace
//! buffer) is compiled out — only [`ShardedU64`], the one primitive
//! rayon workers hammer concurrently, is model-checked here. `Box::leak`
//! gives spawned threads `'static` access; the leak is bounded by the
//! explored-schedule count (test-only binary).

#![cfg(loom)]

use nwhy_obs::sharded::ShardedU64;

/// Two writers on distinct shards: no bump is ever lost. (A concurrent
/// `sum()` would add 16 interleaving-relevant loads and blow up the
/// schedule space, so the reader runs after the joins — the join edge is
/// exactly the happens-before the API documents for `sum`.)
#[test]
fn loom_sharded_bumps_never_lost() {
    loom::model(|| {
        let c: &'static ShardedU64 = Box::leak(Box::new(ShardedU64::new()));

        let w1 = loom::thread::spawn(move || {
            c.add_to_shard(0, 1);
            c.add_to_shard(0, 2);
        });
        let w2 = loom::thread::spawn(move || {
            c.add_to_shard(1, 4);
        });
        w1.join().unwrap();
        w2.join().unwrap();
        assert_eq!(c.sum(), 7, "all bumps must land after join");
    });
}

/// Two writers racing on the *same* shard: fetch_add must not drop
/// either increment.
#[test]
fn loom_same_shard_contention() {
    loom::model(|| {
        let c: &'static ShardedU64 = Box::leak(Box::new(ShardedU64::new()));

        let handles: Vec<_> = (0..2)
            .map(|_| loom::thread::spawn(move || c.add_to_shard(3, 1)))
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.sum(), 2);
    });
}

/// Shard indices beyond the slab are masked, also under the model.
#[test]
fn loom_shard_masking() {
    loom::model(|| {
        let c = ShardedU64::new();
        c.add_to_shard(usize::MAX, 9);
        assert_eq!(c.sum(), 9);
    });
}
