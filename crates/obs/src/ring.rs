//! The flight-recorder ring: a fixed-capacity lock-free MPSC buffer of
//! telemetry events.
//!
//! [`FlightRing`] keeps the last `capacity` events in a circular slab of
//! per-slot seqlocks. Any thread may [`record`](FlightRing::record)
//! concurrently (multi-producer); [`drain_last`](FlightRing::drain_last)
//! takes a best-effort snapshot of the most recent events without
//! stopping the writers (single logical consumer — concurrent drains are
//! safe but may see overlapping windows).
//!
//! # Protocol (the loom-checked part)
//!
//! Every event claims a monotonically increasing *ticket* `t` with one
//! `fetch_add`; the ticket names both the slot (`t % capacity`) and the
//! slot's expected publication stamp. The writer then runs the slot's
//! seqlock:
//!
//! ```text
//! seq.store(2t + 1, Release)   // odd: write in progress, generation t
//! payload word stores          // Relaxed — the words are themselves atomics
//! seq.store(2t + 2, Release)   // even: published, generation t
//! ```
//!
//! A reader accepts a slot only when `seq` reads `2t + 2` both before
//! *and* after copying the payload words, which rejects in-progress
//! writes and same-slot overwrites from a later ticket (`t' > t` stores
//! a strictly larger stamp, odd first). Payload loads are `Acquire`
//! against the writer's publishing `Release` store, so an accepted slot
//! always carries the generation-`t` words. Because every word is an
//! atomic there is no data race and nothing here needs `unsafe`; a
//! rejected slot is simply skipped (the recorder is diagnostic — losing
//! an event to an overwrite race is by design, tearing one is not).
//!
//! Memory-ordering policy (DESIGN.md §6): publication edges are
//! `Release`/`Acquire` on `seq`; payload and ticket traffic is
//! `Relaxed`. The atomics come from [`nwhy_util::sync`] so the
//! writer/drain pair is exhaustively model-checked in `tests/loom.rs`.

use nwhy_util::sync::{AtomicU64, Ordering};

/// What happened, as recorded in the flight ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlightKind {
    /// A span opened. `id` is the interned span *path* id, `value` 0.
    SpanOpen,
    /// A span closed. `id` is the path id, `value` the duration in µs.
    SpanClose,
    /// A counter was bumped. `id` is the counter index, `value` the
    /// delta.
    CounterDelta,
}

impl FlightKind {
    fn code(self) -> u64 {
        match self {
            FlightKind::SpanOpen => 0,
            FlightKind::SpanClose => 1,
            FlightKind::CounterDelta => 2,
        }
    }

    fn from_code(code: u64) -> Option<FlightKind> {
        match code {
            0 => Some(FlightKind::SpanOpen),
            1 => Some(FlightKind::SpanClose),
            2 => Some(FlightKind::CounterDelta),
            _ => None,
        }
    }
}

/// One recorded telemetry event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlightEvent {
    /// Event class.
    pub kind: FlightKind,
    /// Span path id or counter index, per [`FlightKind`].
    pub id: u32,
    /// Tick stamp from the injected clock (µs since epoch, or the
    /// manual test counter).
    pub tick: u64,
    /// The request id active on the recording thread (0 = unattributed).
    pub req: u64,
    /// Duration (span close) or delta (counter), in the kind's unit.
    pub value: u64,
    /// Logical thread id (the recorder's shard index).
    pub tid: u64,
}

/// One seqlocked slot: a stamp plus five payload words
/// (`kind|id`, `tick`, `req`, `value`, `tid`).
#[derive(Debug)]
struct Slot {
    seq: AtomicU64,
    words: [AtomicU64; 5],
}

impl Slot {
    fn new() -> Slot {
        Slot {
            // No ticket publishes stamp 0, so fresh slots never match.
            seq: AtomicU64::new(0),
            words: [
                AtomicU64::new(0),
                AtomicU64::new(0),
                AtomicU64::new(0),
                AtomicU64::new(0),
                AtomicU64::new(0),
            ],
        }
    }
}

/// A fixed-capacity lock-free MPSC ring of [`FlightEvent`]s.
#[derive(Debug)]
pub struct FlightRing {
    slots: Vec<Slot>,
    ticket: AtomicU64,
}

impl FlightRing {
    /// A ring holding the last `capacity` events (rounded up to a power
    /// of two, minimum 2).
    pub fn new(capacity: usize) -> FlightRing {
        let cap = capacity.max(2).next_power_of_two();
        FlightRing {
            slots: (0..cap).map(|_| Slot::new()).collect(),
            ticket: AtomicU64::new(0),
        }
    }

    /// Slot count (always a power of two).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total events ever recorded (drops are `recorded - capacity` at
    /// most; the ring keeps the newest).
    pub fn recorded(&self) -> u64 {
        self.ticket.load(Ordering::Relaxed)
    }

    #[inline]
    fn slot_for(&self, ticket: u64) -> &Slot {
        // lint: slot index is ticket masked to the power-of-two capacity
        #[allow(clippy::cast_possible_truncation)]
        let idx = (ticket & (self.slots.len() as u64 - 1)) as usize;
        // lint: panic: idx is masked to the pow2 slot count, always in bounds
        &self.slots[idx]
    }

    /// Records one event. Lock-free; wait-free writers except for the
    /// single `fetch_add` claim.
    pub fn record(&self, ev: FlightEvent) {
        let t = self.ticket.fetch_add(1, Ordering::Relaxed);
        let slot = self.slot_for(t);
        let payload = [
            ev.kind.code() << 32 | u64::from(ev.id),
            ev.tick,
            ev.req,
            ev.value,
            ev.tid,
        ];
        slot.seq.store(2 * t + 1, Ordering::Release);
        for (word, value) in slot.words.iter().zip(payload) {
            word.store(value, Ordering::Relaxed);
        }
        slot.seq.store(2 * t + 2, Ordering::Release);
    }

    /// Copies out the newest `n` fully-published events, oldest first.
    /// Events racing a concurrent overwrite are skipped, never torn.
    pub fn drain_last(&self, n: usize) -> Vec<FlightEvent> {
        let head = self.ticket.load(Ordering::Acquire);
        let cap = self.slots.len() as u64;
        let window = (n as u64).min(cap).min(head);
        // lint: window is capped by `n: usize` above, so it fits
        #[allow(clippy::cast_possible_truncation)]
        let mut out = Vec::with_capacity(window as usize);
        for t in (head - window)..head {
            let slot = self.slot_for(t);
            let want = 2 * t + 2;
            if slot.seq.load(Ordering::Acquire) != want {
                continue;
            }
            let mut words = [0u64; 5];
            for (copy, word) in words.iter_mut().zip(&slot.words) {
                *copy = word.load(Ordering::Acquire);
            }
            if slot.seq.load(Ordering::Acquire) != want {
                continue;
            }
            let [head_word, tick, req, value, tid] = words;
            let Some(kind) = FlightKind::from_code(head_word >> 32) else {
                continue;
            };
            // lint: the low half of word 0 is the recorded u32 id
            #[allow(clippy::cast_possible_truncation)]
            let id = head_word as u32;
            out.push(FlightEvent {
                kind,
                id,
                tick,
                req,
                value,
                tid,
            });
        }
        out
    }

    /// Invalidates every slot and rewinds the ticket. Intended between
    /// measurement windows, not concurrently with writers (same contract
    /// as `nwhy_obs::reset`).
    pub fn clear(&self) {
        for slot in &self.slots {
            slot.seq.store(0, Ordering::Relaxed);
        }
        self.ticket.store(0, Ordering::Relaxed);
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;

    fn ev(id: u32, tick: u64, req: u64) -> FlightEvent {
        FlightEvent {
            kind: FlightKind::SpanClose,
            id,
            tick,
            req,
            value: tick * 10,
            tid: 1,
        }
    }

    #[test]
    fn capacity_rounds_to_power_of_two() {
        assert_eq!(FlightRing::new(0).capacity(), 2);
        assert_eq!(FlightRing::new(5).capacity(), 8);
        assert_eq!(FlightRing::new(4096).capacity(), 4096);
    }

    #[test]
    fn records_and_drains_in_order() {
        let r = FlightRing::new(8);
        for i in 0..5u64 {
            // lint: test ids stay tiny
            #[allow(clippy::cast_possible_truncation)]
            r.record(ev(i as u32, i, 7));
        }
        let got = r.drain_last(16);
        assert_eq!(got.len(), 5);
        assert_eq!(got.first().unwrap().id, 0);
        assert_eq!(got.last().unwrap().id, 4);
        assert!(got.iter().all(|e| e.req == 7));
        // a smaller drain takes the newest suffix
        let last2 = r.drain_last(2);
        assert_eq!(last2.iter().map(|e| e.id).collect::<Vec<_>>(), vec![3, 4]);
    }

    #[test]
    fn wraparound_keeps_only_the_newest() {
        let r = FlightRing::new(4);
        for i in 0..10u32 {
            r.record(ev(i, u64::from(i), 0));
        }
        assert_eq!(r.recorded(), 10);
        let got = r.drain_last(64);
        assert_eq!(
            got.iter().map(|e| e.id).collect::<Vec<_>>(),
            vec![6, 7, 8, 9]
        );
    }

    #[test]
    fn clear_empties_the_ring() {
        let r = FlightRing::new(4);
        r.record(ev(1, 1, 0));
        r.clear();
        assert!(r.drain_last(4).is_empty());
        assert_eq!(r.recorded(), 0);
        r.record(ev(2, 2, 0));
        assert_eq!(r.drain_last(4).len(), 1);
    }

    #[test]
    fn kinds_round_trip_through_the_packing() {
        let r = FlightRing::new(4);
        for kind in [
            FlightKind::SpanOpen,
            FlightKind::SpanClose,
            FlightKind::CounterDelta,
        ] {
            r.record(FlightEvent {
                kind,
                id: u32::MAX,
                tick: 3,
                req: 9,
                value: u64::MAX,
                tid: 2,
            });
        }
        let got = r.drain_last(3);
        assert_eq!(got.len(), 3);
        assert_eq!(got[0].kind, FlightKind::SpanOpen);
        assert_eq!(got[1].kind, FlightKind::SpanClose);
        assert_eq!(got[2].kind, FlightKind::CounterDelta);
        assert!(got.iter().all(|e| e.id == u32::MAX && e.value == u64::MAX));
    }

    #[test]
    fn concurrent_writers_never_tear() {
        let r = FlightRing::new(64);
        std::thread::scope(|s| {
            for w in 0..4u64 {
                let r = &r;
                s.spawn(move || {
                    for i in 0..1_000u64 {
                        r.record(FlightEvent {
                            kind: FlightKind::CounterDelta,
                            // lint: test ids stay tiny
                            #[allow(clippy::cast_possible_truncation)]
                            id: w as u32,
                            tick: i,
                            req: w + 1,
                            value: (w + 1) * 1_000 + i,
                            tid: w,
                        });
                    }
                });
            }
        });
        assert_eq!(r.recorded(), 4_000);
        let got = r.drain_last(64);
        assert!(!got.is_empty());
        // un-torn: every event's value encodes its own req consistently
        for e in got {
            assert_eq!(e.value / 1_000, e.req, "torn event: {e:?}");
            assert_eq!(u64::from(e.id) + 1, e.req, "torn event fields");
        }
    }
}
