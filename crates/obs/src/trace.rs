//! Chrome `trace_event` output.
//!
//! Completed spans are buffered as [`TraceEvent`]s and rendered with
//! [`to_chrome_trace`] into the JSON array format that
//! `chrome://tracing` / Perfetto's legacy loader accept: complete events
//! (`"ph": "X"`) with microsecond timestamps relative to process start.

use crate::json::escape;

/// One completed span, ready for the Chrome trace viewer.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Span label (the leaf name, not the full path).
    pub name: &'static str,
    /// Microseconds from the registry epoch to span start.
    pub start_us: u64,
    /// Span duration in microseconds.
    pub dur_us: u64,
    /// Logical thread id (the thread's shard index).
    pub tid: u64,
}

/// Renders events as a Chrome `trace_event` JSON array document.
pub fn to_chrome_trace(events: &[TraceEvent]) -> String {
    let mut out = String::from("{\"traceEvents\": [");
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n  {{\"name\": \"{}\", \"ph\": \"X\", \"pid\": 1, \"tid\": {}, \"ts\": {}, \"dur\": {}}}",
            escape(e.name),
            e.tid,
            e.start_us,
            e.dur_us
        ));
    }
    if !events.is_empty() {
        out.push('\n');
    }
    out.push_str("], \"displayTimeUnit\": \"ms\"}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    #[test]
    fn chrome_trace_is_valid_json_with_required_keys() {
        let events = vec![
            TraceEvent {
                name: "sline.hashmap",
                start_us: 10,
                dur_us: 250,
                tid: 0,
            },
            TraceEvent {
                name: "bfs",
                start_us: 300,
                dur_us: 40,
                tid: 3,
            },
        ];
        let v = parse(&to_chrome_trace(&events)).expect("chrome trace must parse");
        let arr = v.get("traceEvents").unwrap().as_array().unwrap();
        assert_eq!(arr.len(), 2);
        for e in arr {
            assert_eq!(e.get("ph").unwrap().as_str(), Some("X"));
            assert!(e.get("ts").unwrap().as_u64().is_some());
            assert!(e.get("dur").unwrap().as_u64().is_some());
            assert!(e.get("tid").unwrap().as_u64().is_some());
        }
        assert_eq!(arr[1].get("name").unwrap().as_str(), Some("bfs"));
    }

    #[test]
    fn empty_trace_is_valid() {
        let v = parse(&to_chrome_trace(&[])).unwrap();
        assert_eq!(v.get("traceEvents").unwrap().as_array().unwrap().len(), 0);
    }
}
