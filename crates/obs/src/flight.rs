//! The process-global flight recorder (active build only).
//!
//! Owns one lazily-created [`FlightRing`] plus the anomaly hook: when a
//! span close exceeds the configured duration threshold, the ring is
//! dumped as a Chrome `trace_event` JSON file so the events *leading up
//! to* the slow span survive for post-mortem inspection
//! (`nwhy-cli flightrec` renders the same document).
//!
//! Event stamps come from [`crate::clock`] (deterministic under manual
//! ticks) and the request id from [`crate::ctx`]; the registry calls
//! [`record`] from `span_enter`/`span_exit`/`add`.

use std::path::{Path, PathBuf};
// lint: deliberately std, not nwhy_util::sync — this module is compiled
// out under `--cfg loom` alongside the registry; the loom model drives
// the FlightRing directly
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

use crate::counters::Counter;
use crate::json;
use crate::ring::{FlightEvent, FlightKind, FlightRing};

/// Events held by the global ring (latest-wins once full).
const RING_CAPACITY: usize = 4096;

/// Span duration (µs) at or above which the anomaly hook fires.
/// `u64::MAX` disables it.
static ANOMALY_US: AtomicU64 = AtomicU64::new(u64::MAX);

static DUMP_PATH: Mutex<Option<PathBuf>> = Mutex::new(None);

fn ring() -> &'static FlightRing {
    static RING: OnceLock<FlightRing> = OnceLock::new();
    RING.get_or_init(|| FlightRing::new(RING_CAPACITY))
}

/// Records one event, stamping the current tick and request id.
pub(crate) fn record(kind: FlightKind, id: u32, value: u64, tid: u64) {
    ring().record(FlightEvent {
        kind,
        id,
        tick: crate::clock::now_ticks(),
        req: crate::ctx::current_request_id(),
        value,
        tid,
    });
}

/// Snapshot of the newest `n` events, oldest first.
pub(crate) fn drain_last(n: usize) -> Vec<FlightEvent> {
    ring().drain_last(n)
}

/// Empties the ring (part of `nwhy_obs::reset`).
pub(crate) fn clear() {
    ring().clear();
}

/// Sets the anomaly threshold (`None` disables) and the dump target.
pub(crate) fn configure(anomaly_us: Option<u64>, dump_path: Option<&Path>) {
    ANOMALY_US.store(anomaly_us.unwrap_or(u64::MAX), Ordering::Relaxed);
    *DUMP_PATH.lock().unwrap_or_else(|p| p.into_inner()) = dump_path.map(Path::to_path_buf);
}

/// Called by `span_exit` with every completed span's duration; dumps the
/// ring when the threshold trips and a dump path is configured. Returns
/// the path written, if any (anomalies are rare; a failed write is
/// swallowed — the recorder must never take down the workload).
pub(crate) fn check_anomaly(dur_us: u64) -> Option<PathBuf> {
    if dur_us < ANOMALY_US.load(Ordering::Relaxed) {
        return None;
    }
    let path = DUMP_PATH
        .lock()
        .unwrap_or_else(|p| p.into_inner())
        .clone()?;
    let doc = render_chrome(&drain_last(RING_CAPACITY));
    std::fs::write(&path, doc).ok()?;
    Some(path)
}

/// The human-readable name behind an event id.
fn event_name(ev: &FlightEvent) -> String {
    match ev.kind {
        FlightKind::SpanOpen | FlightKind::SpanClose => {
            crate::registry::span_full_path(ev.id as usize)
                .unwrap_or_else(|| format!("span#{}", ev.id))
        }
        FlightKind::CounterDelta => Counter::ALL
            .get(ev.id as usize)
            .map_or_else(|| format!("counter#{}", ev.id), |c| c.name().to_string()),
    }
}

/// Renders flight events as a Chrome `trace_event` JSON document:
/// span closes become complete (`"X"`) slices spanning their duration,
/// span opens instant (`"i"`) marks, counter deltas counter (`"C"`)
/// samples. Every event carries its request id in `args.req`.
pub(crate) fn render_chrome(events: &[FlightEvent]) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    for (i, ev) in events.iter().enumerate() {
        if i != 0 {
            out.push(',');
        }
        let name = json::escape(&event_name(ev));
        match ev.kind {
            FlightKind::SpanClose => {
                let ts = ev.tick.saturating_sub(ev.value);
                out.push_str(&format!(
                    "{{\"name\":\"{name}\",\"ph\":\"X\",\"ts\":{ts},\"dur\":{},\
                     \"pid\":0,\"tid\":{},\"args\":{{\"req\":{}}}}}",
                    ev.value, ev.tid, ev.req
                ));
            }
            FlightKind::SpanOpen => {
                out.push_str(&format!(
                    "{{\"name\":\"{name}\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{},\
                     \"pid\":0,\"tid\":{},\"args\":{{\"req\":{}}}}}",
                    ev.tick, ev.tid, ev.req
                ));
            }
            FlightKind::CounterDelta => {
                out.push_str(&format!(
                    "{{\"name\":\"{name}\",\"ph\":\"C\",\"ts\":{},\
                     \"pid\":0,\"tid\":{},\"args\":{{\"req\":{},\"delta\":{}}}}}",
                    ev.tick, ev.tid, ev.req, ev.value
                ));
            }
        }
    }
    out.push_str("]}");
    out
}
