//! The process-global metric registry (active build only).
//!
//! This module is compiled only with the `enabled` feature on and loom
//! off: loom's instrumented atomics cannot back a lazily-created global
//! (and the model checker only needs [`crate::sharded::ShardedU64`],
//! which it exercises directly in `tests/loom.rs`).
//!
//! Layout:
//! - one [`ShardedU64`] per [`Counter`] — lock-free, relaxed, bumped
//!   from rayon workers via their thread shard index;
//! - one power-of-two-bucket slab per [`Hist`] — plain std atomics
//!   (`fetch_max` is not in the loom stand-in, so these deliberately do
//!   not route through `nwhy_util::sync`);
//! - a mutex-protected span intern table mapping `(parent, name)` to a
//!   dense path id with per-path `(count, total)` aggregates;
//! - a bounded buffer of completed-span [`TraceEvent`]s.

use std::cell::{Cell, RefCell};
// lint: deliberately std, not nwhy_util::sync — the global counter
// registry must stay usable outside loom models even in `--cfg loom`
// builds (the loom tests themselves assert on it between models)
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

use crate::counters::{Counter, Hist};
use crate::ring::FlightKind;
use crate::sharded::ShardedU64;
use crate::snapshot::{
    CounterSnapshot, HistSnapshot, MetricsSnapshot, QuantileSnapshot, SpanSnapshot,
};
use crate::trace::TraceEvent;
use crate::window::WindowedHist;

/// Ticks (µs in wall-clock mode) per latency sub-window: 1 s each, so
/// the 8-slot ring answers quantiles over a trailing ~8 s.
const LATENCY_SUB_WIDTH: u64 = 1_000_000;

/// Power-of-two histogram buckets: index `i` holds values `v` with
/// `64 - v.leading_zeros() == i`, i.e. 0, 1, 2..3, 4..7, …
const HIST_BUCKETS: usize = 65;

/// Completed spans kept for the Chrome trace; later spans are dropped
/// (the aggregates still count them).
const MAX_TRACE_EVENTS: usize = 1 << 16;

/// Sentinel parent id for root spans.
const NO_PARENT: usize = usize::MAX;

struct HistSlab {
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
    buckets: [AtomicU64; HIST_BUCKETS],
}

impl HistSlab {
    fn new() -> Self {
        Self {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    fn observe(&self, value: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
        let idx = 64 - value.leading_zeros() as usize;
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
    }

    fn reset(&self) {
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
    }
}

#[derive(Default)]
struct SpanTable {
    /// `(parent path id, leaf name)` per path id, in creation order.
    paths: Vec<(usize, &'static str)>,
    /// `(completed count, total wall time)` per path id.
    aggregates: Vec<(u64, Duration)>,
}

impl SpanTable {
    fn intern(&mut self, parent: usize, name: &'static str) -> usize {
        if let Some(id) = self
            .paths
            .iter()
            .position(|&(p, n)| p == parent && n == name)
        {
            return id;
        }
        self.paths.push((parent, name));
        self.aggregates.push((0, Duration::ZERO));
        self.paths.len() - 1
    }

    fn full_path(&self, mut id: usize) -> String {
        let mut parts = Vec::new();
        while id != NO_PARENT {
            let (parent, name) = self.paths[id];
            parts.push(name);
            id = parent;
        }
        parts.reverse();
        parts.join("/")
    }
}

struct Registry {
    counters: Vec<ShardedU64>,
    hists: Vec<HistSlab>,
    spans: Mutex<SpanTable>,
    trace: Mutex<Vec<TraceEvent>>,
    /// Trailing-window latency per op name (span leaf or explicit
    /// [`observe_latency`] op). The mutex guards only the name lookup;
    /// observations go through the cloned `Arc` lock-free.
    windows: Mutex<Vec<(&'static str, Arc<WindowedHist>)>>,
    epoch: Instant,
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| Registry {
        counters: (0..Counter::ALL.len()).map(|_| ShardedU64::new()).collect(),
        hists: (0..Hist::ALL.len()).map(|_| HistSlab::new()).collect(),
        spans: Mutex::new(SpanTable::default()),
        trace: Mutex::new(Vec::new()),
        windows: Mutex::new(Vec::new()),
        epoch: Instant::now(),
    })
}

static NEXT_SHARD: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static SHARD: Cell<usize> = const { Cell::new(usize::MAX) };
    static SPAN_STACK: RefCell<Vec<usize>> = const { RefCell::new(Vec::new()) };
}

/// This thread's stable shard index (assigned round-robin on first use).
pub(crate) fn shard_index() -> usize {
    SHARD.with(|s| {
        let v = s.get();
        if v != usize::MAX {
            return v;
        }
        let v = NEXT_SHARD.fetch_add(1, Ordering::Relaxed);
        s.set(v);
        v
    })
}

pub(crate) fn add(counter: Counter, n: u64) {
    let shard = shard_index();
    registry().counters[counter.index()].add_to_shard(shard, n);
    // lint: counter indices are tiny (Counter::ALL is a fixed 22-entry enum)
    #[allow(clippy::cast_possible_truncation)]
    crate::flight::record(
        FlightKind::CounterDelta,
        counter.index() as u32,
        n,
        shard as u64,
    );
}

/// Records one latency observation (µs) into `op`'s trailing window.
pub(crate) fn observe_latency(op: &'static str, micros: u64) {
    let win = {
        let mut windows = registry()
            .windows
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        match windows.iter().find(|(name, _)| *name == op) {
            Some((_, w)) => Arc::clone(w),
            None => {
                let w = Arc::new(WindowedHist::new(LATENCY_SUB_WIDTH));
                windows.push((op, Arc::clone(&w)));
                w
            }
        }
    };
    win.observe(crate::clock::now_ticks(), micros);
}

/// Resolves a span path id to its `/`-joined path (for flight-recorder
/// rendering). `None` for ids the table has never interned.
pub(crate) fn span_full_path(id: usize) -> Option<String> {
    let table = registry()
        .spans
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    (id < table.paths.len()).then(|| table.full_path(id))
}

pub(crate) fn counter_value(counter: Counter) -> u64 {
    registry().counters[counter.index()].sum()
}

pub(crate) fn observe(hist: Hist, value: u64) {
    registry().hists[hist.index()].observe(value);
}

/// Live guts of [`crate::Span`].
#[derive(Debug)]
pub(crate) struct SpanInner {
    path_id: usize,
    name: &'static str,
    start: Instant,
}

pub(crate) fn span_enter(name: &'static str) -> SpanInner {
    let reg = registry();
    let parent = SPAN_STACK.with(|s| s.borrow().last().copied().unwrap_or(NO_PARENT));
    let path_id = {
        let mut table = reg
            .spans
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        table.intern(parent, name)
    };
    SPAN_STACK.with(|s| s.borrow_mut().push(path_id));
    crate::flight::record(
        FlightKind::SpanOpen,
        u32::try_from(path_id).unwrap_or(u32::MAX),
        0,
        shard_index() as u64,
    );
    SpanInner {
        path_id,
        name,
        start: Instant::now(),
    }
}

pub(crate) fn span_exit(inner: &SpanInner) {
    let elapsed = inner.start.elapsed();
    let reg = registry();
    SPAN_STACK.with(|s| {
        let mut stack = s.borrow_mut();
        // Pop our own frame. Out-of-order drops (spans stored in structs)
        // just truncate to the matching frame if present.
        if let Some(pos) = stack.iter().rposition(|&id| id == inner.path_id) {
            stack.truncate(pos);
        }
    });
    {
        let mut table = reg
            .spans
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let agg = &mut table.aggregates[inner.path_id];
        agg.0 += 1;
        agg.1 += elapsed;
    }
    {
        let mut trace = reg
            .trace
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if trace.len() < MAX_TRACE_EVENTS {
            // lint: u128 microsecond counts fit u64 for the next ~584k years
            #[allow(clippy::cast_possible_truncation)]
            let start_us = inner.start.saturating_duration_since(reg.epoch).as_micros() as u64;
            // lint: u128 microsecond counts fit u64 for the next ~584k years
            #[allow(clippy::cast_possible_truncation)]
            let dur_us = elapsed.as_micros() as u64;
            trace.push(TraceEvent {
                name: inner.name,
                start_us,
                dur_us,
                tid: shard_index() as u64,
            });
        }
    }
    // lint: u128 microsecond counts fit u64 for the next ~584k years
    #[allow(clippy::cast_possible_truncation)]
    let dur_us = elapsed.as_micros() as u64;
    crate::flight::record(
        FlightKind::SpanClose,
        u32::try_from(inner.path_id).unwrap_or(u32::MAX),
        dur_us,
        shard_index() as u64,
    );
    observe_latency(inner.name, dur_us);
    crate::flight::check_anomaly(dur_us);
}

pub(crate) fn snapshot() -> MetricsSnapshot {
    let reg = registry();
    let mut counters: Vec<CounterSnapshot> = Counter::ALL
        .iter()
        .filter_map(|&c| {
            let value = reg.counters[c.index()].sum();
            (value != 0).then_some(CounterSnapshot {
                name: c.name(),
                value,
            })
        })
        .collect();
    // Every section is key-sorted so repeated snapshots of the same
    // state render identically in every sink (text, JSON, Prometheus,
    // BENCH_*.json) regardless of declaration or first-use order.
    counters.sort_unstable_by_key(|c| c.name);
    let mut spans: Vec<SpanSnapshot> = {
        let table = reg
            .spans
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        (0..table.paths.len())
            .filter(|&id| table.aggregates[id].0 != 0)
            .map(|id| SpanSnapshot {
                path: table.full_path(id),
                count: table.aggregates[id].0,
                total_seconds: table.aggregates[id].1.as_secs_f64(),
            })
            .collect()
    };
    spans.sort_unstable_by(|a, b| a.path.cmp(&b.path));
    let mut hists: Vec<HistSnapshot> = Hist::ALL
        .iter()
        .filter_map(|&h| {
            let slab = &reg.hists[h.index()];
            let count = slab.count.load(Ordering::Relaxed);
            (count != 0).then(|| HistSnapshot {
                name: h.name(),
                count,
                sum: slab.sum.load(Ordering::Relaxed),
                max: slab.max.load(Ordering::Relaxed),
                buckets: slab
                    .buckets
                    .iter()
                    .enumerate()
                    .filter_map(|(i, b)| {
                        let n = b.load(Ordering::Relaxed);
                        (n != 0).then(|| {
                            let ub = match i {
                                0 => 0,
                                64 => u64::MAX,
                                i => (1u64 << i) - 1,
                            };
                            (ub, n)
                        })
                    })
                    .collect(),
            })
        })
        .collect();
    hists.sort_unstable_by_key(|h| h.name);
    let now = crate::clock::now_ticks();
    let mut quantiles: Vec<QuantileSnapshot> = {
        let windows = reg
            .windows
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        windows
            .iter()
            .map(|(op, w)| {
                let m = w.merged(now);
                QuantileSnapshot {
                    op: (*op).to_string(),
                    count: m.count,
                    p50: m.p50(),
                    p90: m.p90(),
                    p99: m.p99(),
                    max: m.max,
                }
            })
            .collect()
    };
    quantiles.sort_unstable_by(|a, b| a.op.cmp(&b.op));
    MetricsSnapshot {
        counters,
        spans,
        hists,
        quantiles,
    }
}

pub(crate) fn reset() {
    let reg = registry();
    for c in &reg.counters {
        c.reset();
    }
    for h in &reg.hists {
        h.reset();
    }
    {
        let mut table = reg
            .spans
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        *table = SpanTable::default();
    }
    reg.trace
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .clear();
    reg.windows
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .clear();
    crate::flight::clear();
    crate::clock::reset();
}

pub(crate) fn take_trace() -> Vec<TraceEvent> {
    std::mem::take(
        &mut *registry()
            .trace
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner),
    )
}
