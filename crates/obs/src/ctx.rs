//! `RequestCtx` — the per-query attribution layer.
//!
//! A [`RequestCtx`] is a `Copy` handle carrying a `u64` request id. While
//! a context is *entered* on a thread (RAII [`CtxGuard`]), every flight
//! event that thread records — span opens/closes and counter deltas —
//! carries the id, so one query's work is attributable end-to-end in a
//! recorder dump even when several queries interleave.
//!
//! Copy-on-spawn: the handle is plain data, so it crosses thread
//! boundaries by value (`move` it into the closure, `enter` it inside).
//! The nwhy kernels do not propagate it into rayon workers; instead they
//! rely on `KernelStats`' one-flush-per-construction design — worker
//! tallies are reduced into the caller thread and flushed there, where
//! the context *is* entered, so the counter deltas still attribute
//! correctly (DESIGN.md §6).
//!
//! Id 0 is reserved for "unattributed"; fresh ids start at 1. With the
//! `enabled` feature off the handle is a ZST and every operation is a
//! no-op.

#[cfg(all(feature = "enabled", not(loom)))]
mod active {
    use std::cell::Cell;
    // lint: deliberately std, not nwhy_util::sync — compiled out under
    // `--cfg loom` with the rest of the active context layer
    use std::sync::atomic::{AtomicU64, Ordering};

    static NEXT_ID: AtomicU64 = AtomicU64::new(1);

    thread_local! {
        static CURRENT: Cell<u64> = const { Cell::new(0) };
    }

    /// A request/query identity. Cheap to copy across threads.
    #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
    pub struct RequestCtx {
        id: u64,
    }

    impl RequestCtx {
        /// A fresh context with a process-unique id (never 0).
        pub fn new() -> RequestCtx {
            RequestCtx {
                id: NEXT_ID.fetch_add(1, Ordering::Relaxed),
            }
        }

        /// Wraps an externally-assigned id (e.g. a server's request id).
        /// Id 0 means "unattributed".
        pub fn from_id(id: u64) -> RequestCtx {
            RequestCtx { id }
        }

        /// This context's id.
        pub fn id(self) -> u64 {
            self.id
        }

        /// Makes this context current on the calling thread until the
        /// returned guard drops (restoring whatever was current before —
        /// contexts nest).
        #[must_use = "the context is only current while the guard lives"]
        pub fn enter(self) -> CtxGuard {
            let prev = CURRENT.with(|c| c.replace(self.id));
            CtxGuard { prev }
        }
    }

    impl Default for RequestCtx {
        fn default() -> RequestCtx {
            RequestCtx::new()
        }
    }

    /// RAII restore of the previously-current request id.
    #[derive(Debug)]
    pub struct CtxGuard {
        prev: u64,
    }

    impl Drop for CtxGuard {
        fn drop(&mut self) {
            CURRENT.with(|c| c.set(self.prev));
        }
    }

    /// The id entered on this thread, or 0.
    pub fn current_request_id() -> u64 {
        CURRENT.with(Cell::get)
    }
}

#[cfg(not(all(feature = "enabled", not(loom))))]
mod active {
    /// A request/query identity (ZST in disabled builds).
    #[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
    pub struct RequestCtx;

    impl RequestCtx {
        /// A fresh context (no-op).
        pub fn new() -> RequestCtx {
            RequestCtx
        }

        /// Wraps an externally-assigned id (discarded; no-op).
        pub fn from_id(_id: u64) -> RequestCtx {
            RequestCtx
        }

        /// Always 0 in disabled builds.
        pub fn id(self) -> u64 {
            0
        }

        /// No-op guard.
        #[must_use = "the context is only current while the guard lives"]
        pub fn enter(self) -> CtxGuard {
            CtxGuard
        }
    }

    /// RAII restore (ZST no-op in disabled builds).
    #[derive(Debug)]
    pub struct CtxGuard;

    /// Always 0 in disabled builds.
    pub fn current_request_id() -> u64 {
        0
    }
}

pub use active::{current_request_id, CtxGuard, RequestCtx};

#[cfg(all(test, feature = "enabled", not(loom)))]
mod tests {
    use super::*;

    #[test]
    fn ids_are_unique_and_nonzero() {
        let a = RequestCtx::new();
        let b = RequestCtx::new();
        assert_ne!(a.id(), 0);
        assert_ne!(a.id(), b.id());
    }

    #[test]
    fn enter_nests_and_restores() {
        assert_eq!(current_request_id(), 0);
        let outer = RequestCtx::from_id(10);
        let inner = RequestCtx::from_id(20);
        {
            let _o = outer.enter();
            assert_eq!(current_request_id(), 10);
            {
                let _i = inner.enter();
                assert_eq!(current_request_id(), 20);
            }
            assert_eq!(current_request_id(), 10);
        }
        assert_eq!(current_request_id(), 0);
    }

    #[test]
    fn copies_carry_the_same_id() {
        let ctx = RequestCtx::new();
        let copy = ctx;
        assert_eq!(ctx.id(), copy.id());
        let handle = std::thread::spawn(move || {
            let _g = copy.enter();
            current_request_id()
        });
        assert_eq!(handle.join().expect("ctx thread"), ctx.id());
    }
}
