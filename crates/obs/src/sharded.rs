//! The sharded relaxed-atomic accumulator underneath every counter.
//!
//! A single global `AtomicU64` bumped from every rayon worker would
//! serialize the workers on one cache line. [`ShardedU64`] spreads the
//! bumps over [`SHARDS`] cache-line-padded slots; readers sum the slots.
//! All operations are `Relaxed`: counters only ever feed *reports*, never
//! synchronize data, so per the workspace ordering policy (DESIGN.md §5b)
//! no acquire/release edges are needed.
//!
//! The atomic type comes from [`nwhy_util::sync`], the workspace's
//! `cfg(loom)` switch point, so `tests/loom.rs` can exhaustively
//! interleave concurrent bumps against a reader.

use nwhy_util::sync::{AtomicU64, Ordering};

/// Number of shards per counter. A power of two so shard selection is a
/// mask; 16 covers typical worker counts without bloating snapshots.
pub const SHARDS: usize = 16;

/// One cache line worth of padding around a shard slot.
#[repr(align(64))]
#[derive(Debug, Default)]
struct Padded(AtomicU64);

/// A monotonically increasing counter sharded over [`SHARDS`]
/// cache-line-padded atomic slots.
#[derive(Debug)]
pub struct ShardedU64 {
    shards: [Padded; SHARDS],
}

impl Default for ShardedU64 {
    fn default() -> Self {
        Self::new()
    }
}

impl ShardedU64 {
    /// A zeroed counter. (Not `const`: the loom-instrumented atomics
    /// have non-const constructors.)
    pub fn new() -> Self {
        Self {
            shards: Default::default(),
        }
    }

    /// Adds `n` to the given shard (callers pick the shard by worker
    /// identity; any index is valid — it is masked).
    #[inline]
    pub fn add_to_shard(&self, shard: usize, n: u64) {
        self.shards[shard % SHARDS]
            .0
            .fetch_add(n, Ordering::Relaxed);
    }

    /// Sum over all shards. Racy by nature: concurrent bumps may or may
    /// not be included, but every bump that happened-before the call is.
    pub fn sum(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }

    /// Zeroes every shard (between measurement windows; not intended to
    /// race with writers).
    pub fn reset(&self) {
        for s in &self.shards {
            s.0.store(0, Ordering::Relaxed);
        }
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;

    #[test]
    fn sums_across_shards() {
        let c = ShardedU64::new();
        for i in 0..100 {
            c.add_to_shard(i, 2);
        }
        assert_eq!(c.sum(), 200);
        c.reset();
        assert_eq!(c.sum(), 0);
    }

    #[test]
    fn shard_index_is_masked() {
        let c = ShardedU64::new();
        c.add_to_shard(usize::MAX, 5);
        assert_eq!(c.sum(), 5);
    }

    #[test]
    fn concurrent_bumps_all_land() {
        let c = ShardedU64::new();
        std::thread::scope(|s| {
            for t in 0..8 {
                let c = &c;
                s.spawn(move || {
                    for _ in 0..10_000 {
                        c.add_to_shard(t, 1);
                    }
                });
            }
        });
        assert_eq!(c.sum(), 80_000);
    }
}
