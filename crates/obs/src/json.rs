//! Minimal JSON support: string escaping, float formatting, and a small
//! recursive-descent parser.
//!
//! The workspace vendors no serde, so the round-trip and schema tests
//! (`--metrics=json`, `BENCH_*.json`) need a reader of their own. This
//! parser handles the full JSON grammar minus `\u` escapes beyond the
//! BMP surrogate-free range — more than enough for output we generate
//! ourselves.

use std::collections::BTreeMap;

/// Escapes a string for embedding inside JSON double quotes.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f64` as a valid JSON value: non-finite inputs (`NaN`,
/// `±inf` — e.g. the quantile of an empty window or the mean of a
/// 0-count histogram) become `null`; finite values always carry a
/// decimal point or exponent so they re-parse as floats.
pub fn fmt_f64(x: f64) -> String {
    if !x.is_finite() {
        return "null".into();
    }
    let s = format!("{x}");
    if s.contains('.') || s.contains('e') || s.contains('E') {
        s
    } else {
        format!("{s}.0")
    }
}

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number, kept as `f64` (plus the exact u64 when integral).
    Num(f64),
    /// A string literal.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object. `BTreeMap` keeps iteration deterministic for tests.
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// Object member lookup (`None` for non-objects / missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(v) => Some(v),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The number as `f64`, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The number as `u64` when it is a non-negative integer.
    // lint: the match guard pins the value to a non-negative integer ≤ u64::MAX
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(x) if *x >= 0.0 && x.fract() == 0.0 && *x <= u64::MAX as f64 => {
                Some(*x as u64)
            }
            _ => None,
        }
    }
}

/// Parses a complete JSON document (trailing whitespace allowed, trailing
/// garbage rejected).
pub fn parse(input: &str) -> Result<Value, String> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    skip_ws(b, pos);
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!(
            "expected '{}' at byte {pos}",
            c as char,
            pos = *pos
        ))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(b, pos);
    let Some(&c) = b.get(*pos) else {
        return Err("unexpected end of input".into());
    };
    match c {
        b'{' => parse_object(b, pos),
        b'[' => parse_array(b, pos),
        b'"' => Ok(Value::Str(parse_string(b, pos)?)),
        b't' => parse_lit(b, pos, "true", Value::Bool(true)),
        b'f' => parse_lit(b, pos, "false", Value::Bool(false)),
        b'n' => parse_lit(b, pos, "null", Value::Null),
        b'-' | b'0'..=b'9' => parse_number(b, pos),
        _ => Err(format!(
            "unexpected byte '{}' at {pos}",
            c as char,
            pos = *pos
        )),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Value) -> Result<Value, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("bad literal at byte {pos}", pos = *pos))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-') {
        *pos += 1;
    }
    let s = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
    s.parse::<f64>()
        .map(Value::Num)
        .map_err(|e| format!("bad number {s:?}: {e}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        let Some(&c) = b.get(*pos) else {
            return Err("unterminated string".into());
        };
        *pos += 1;
        match c {
            b'"' => return Ok(out),
            b'\\' => {
                let Some(&e) = b.get(*pos) else {
                    return Err("unterminated escape".into());
                };
                *pos += 1;
                match e {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let hex = b.get(*pos..*pos + 4).ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                            16,
                        )
                        .map_err(|e| e.to_string())?;
                        *pos += 4;
                        out.push(char::from_u32(code).ok_or("surrogate \\u escape")?);
                    }
                    _ => return Err(format!("bad escape '\\{}'", e as char)),
                }
            }
            c => {
                // Re-assemble multi-byte UTF-8 sequences byte-by-byte.
                if c < 0x80 {
                    out.push(c as char);
                } else {
                    let len = if c >= 0xf0 {
                        4
                    } else if c >= 0xe0 {
                        3
                    } else {
                        2
                    };
                    let start = *pos - 1;
                    let chunk = b
                        .get(start..start + len)
                        .ok_or("truncated UTF-8 sequence")?;
                    let s = std::str::from_utf8(chunk).map_err(|e| e.to_string())?;
                    out.push_str(s);
                    *pos = start + len;
                }
            }
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Array(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}", pos = *pos)),
        }
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(b, pos, b'{')?;
    let mut map = BTreeMap::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Object(map));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        expect(b, pos, b':')?;
        let val = parse_value(b, pos)?;
        map.insert(key, val);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Object(map));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}", pos = *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("42").unwrap().as_u64(), Some(42));
        assert_eq!(parse("-1.5").unwrap().as_f64(), Some(-1.5));
        assert_eq!(parse("\"hi\"").unwrap().as_str(), Some("hi"));
        assert_eq!(parse("true").unwrap(), Value::Bool(true));
        assert_eq!(parse("null").unwrap(), Value::Null);
    }

    #[test]
    fn parses_nested() {
        let v = parse(r#"{"a": [1, {"b": "x\n"}], "c": 2e3}"#).unwrap();
        assert_eq!(v.get("c").unwrap().as_f64(), Some(2000.0));
        let arr = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1].get("b").unwrap().as_str(), Some("x\n"));
    }

    #[test]
    fn escape_round_trips() {
        let s = "quo\"te\\back\nnew\ttab\u{1} Ünïcödé";
        let doc = format!("\"{}\"", escape(s));
        assert_eq!(parse(&doc).unwrap().as_str(), Some(s));
    }

    #[test]
    fn fmt_f64_is_json_safe() {
        assert_eq!(fmt_f64(1.0), "1.0");
        assert_eq!(fmt_f64(0.25), "0.25");
        for x in [1.0, 0.25, 1e-9, 12345.678] {
            assert_eq!(parse(&fmt_f64(x)).unwrap().as_f64(), Some(x));
        }
    }

    #[test]
    fn fmt_f64_emits_null_for_non_finite() {
        for x in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let doc = fmt_f64(x);
            assert_eq!(doc, "null");
            // and it stays valid JSON through the parser
            assert_eq!(parse(&doc).unwrap(), Value::Null);
        }
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse("1 2").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
    }
}
