//! Sliding-window latency quantiles over power-of-two histograms.
//!
//! [`WindowedHist`] keeps a ring of `SUB_WINDOWS` sub-window histograms,
//! each covering `sub_width` ticks of the injected clock. An observation
//! lands in the sub-window owning `tick / sub_width`; a read merges every
//! sub-window still inside the trailing window and answers
//! `p50`/`p90`/`p99`/`max` from the merged buckets. Rotation is lazy: the
//! first observer (or reader) to touch a slot whose epoch has expired
//! re-claims it with a CAS and zeroes it — no background thread.
//!
//! The bucket layout matches the registry's cumulative histograms
//! (index `i` holds values `v` with `64 - v.leading_zeros() == i`), so a
//! merged window quantile is exact at bucket granularity: it equals the
//! quantile of the concatenated raw samples to within one power-of-two
//! bucket (pinned by a proptest in `tests/window_quantiles.rs`).
//!
//! Concurrency: built on [`nwhy_util::sync`] atomics (loom-compatible —
//! no `fetch_max`; the running max is a CAS loop). The rotation race is
//! benignly lossy: an observation landing between a slot's epoch CAS and
//! its zeroing can be dropped or double-zeroed, which costs at most a few
//! samples at a sub-window boundary of a *diagnostic* distribution.
//! Single-threaded use (all fixture tests) is exact.

use nwhy_util::sync::{AtomicU64, Ordering};

/// Bucket count shared with the registry's cumulative histograms.
pub const WINDOW_BUCKETS: usize = 65;

/// Sub-windows per ring. 8 × `sub_width` ticks of trailing history.
pub const SUB_WINDOWS: usize = 8;

/// Epoch stamp for a slot that has never been claimed.
const UNCLAIMED: u64 = u64::MAX;

struct SubWindow {
    /// Which `tick / sub_width` epoch this slot currently holds.
    epoch: AtomicU64,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
    buckets: [AtomicU64; WINDOW_BUCKETS],
}

impl SubWindow {
    fn new() -> SubWindow {
        SubWindow {
            epoch: AtomicU64::new(UNCLAIMED),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    fn zero(&self) {
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
    }

    /// Claims this slot for `epoch` if it currently holds an older one,
    /// zeroing the tallies. Returns `true` when the slot holds `epoch`
    /// after the call.
    fn claim(&self, epoch: u64) -> bool {
        let cur = self.epoch.load(Ordering::Acquire);
        if cur == epoch {
            return true;
        }
        if cur != UNCLAIMED && cur > epoch {
            // A newer epoch already owns the slot; this straggler's
            // observation is outside the window anyway.
            return false;
        }
        if self
            .epoch
            .compare_exchange(cur, epoch, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
        {
            self.zero();
            true
        } else {
            // Lost the race; recurse once — the winner either claimed our
            // epoch (we can use the slot) or a newer one (we drop).
            self.epoch.load(Ordering::Acquire) == epoch
        }
    }
}

/// A trailing-window histogram: ring of [`SUB_WINDOWS`] sub-histograms
/// rotated on tick, merged on read.
pub struct WindowedHist {
    sub_width: u64,
    slots: [SubWindow; SUB_WINDOWS],
}

impl std::fmt::Debug for WindowedHist {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WindowedHist")
            .field("sub_width", &self.sub_width)
            .finish_non_exhaustive()
    }
}

impl WindowedHist {
    /// A window of `SUB_WINDOWS × sub_width` ticks. `sub_width` is
    /// clamped to at least 1.
    pub fn new(sub_width: u64) -> WindowedHist {
        WindowedHist {
            sub_width: sub_width.max(1),
            slots: std::array::from_fn(|_| SubWindow::new()),
        }
    }

    /// Ticks covered by one sub-window.
    pub fn sub_width(&self) -> u64 {
        self.sub_width
    }

    /// Ticks covered by the whole trailing window.
    pub fn window_width(&self) -> u64 {
        self.sub_width.saturating_mul(SUB_WINDOWS as u64)
    }

    #[inline]
    fn slot_of(&self, epoch: u64) -> &SubWindow {
        // lint: slot index is epoch modulo the fixed sub-window count
        #[allow(clippy::cast_possible_truncation)]
        let idx = (epoch % SUB_WINDOWS as u64) as usize;
        // lint: panic: idx is epoch modulo the slot count, always in bounds
        &self.slots[idx]
    }

    /// Records `value` at clock time `tick`.
    pub fn observe(&self, tick: u64, value: u64) {
        let epoch = tick / self.sub_width;
        let slot = self.slot_of(epoch);
        if !slot.claim(epoch) {
            return;
        }
        slot.count.fetch_add(1, Ordering::Relaxed);
        slot.sum.fetch_add(value, Ordering::Relaxed);
        // fetch_max is absent from the loom stand-in; CAS loop instead.
        let mut cur = slot.max.load(Ordering::Relaxed);
        while value > cur {
            match slot
                .max
                .compare_exchange_weak(cur, value, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
        let idx = 64 - value.leading_zeros() as usize;
        // lint: panic: leading_zeros is in [0, 64], so idx is in [0, 64]
        slot.buckets[idx].fetch_add(1, Ordering::Relaxed);
    }

    /// Merges every sub-window still inside the trailing window ending at
    /// `tick` (the current, partially-filled sub-window included).
    pub fn merged(&self, tick: u64) -> WindowSummary {
        let now_epoch = tick / self.sub_width;
        let oldest = now_epoch.saturating_sub(SUB_WINDOWS as u64 - 1);
        let mut out = WindowSummary::default();
        for epoch in oldest..=now_epoch {
            let slot = self.slot_of(epoch);
            if slot.epoch.load(Ordering::Acquire) != epoch {
                continue;
            }
            out.count += slot.count.load(Ordering::Relaxed);
            out.sum += slot.sum.load(Ordering::Relaxed);
            out.max = out.max.max(slot.max.load(Ordering::Relaxed));
            for (acc, b) in out.buckets.iter_mut().zip(&slot.buckets) {
                *acc += b.load(Ordering::Relaxed);
            }
        }
        out
    }

    /// Drops all recorded history.
    pub fn clear(&self) {
        for slot in &self.slots {
            slot.zero();
            slot.epoch.store(UNCLAIMED, Ordering::Release);
        }
    }
}

/// The merged view of a [`WindowedHist`] at one point in time.
#[derive(Clone)]
pub struct WindowSummary {
    /// Observations inside the window.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
    /// Largest observed value (exact, not bucketed).
    pub max: u64,
    /// Power-of-two bucket counts, same layout as the cumulative
    /// histograms.
    pub buckets: [u64; WINDOW_BUCKETS],
}

impl Default for WindowSummary {
    fn default() -> WindowSummary {
        WindowSummary {
            count: 0,
            sum: 0,
            max: 0,
            buckets: [0; WINDOW_BUCKETS],
        }
    }
}

impl std::fmt::Debug for WindowSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WindowSummary")
            .field("count", &self.count)
            .field("sum", &self.sum)
            .field("max", &self.max)
            .finish_non_exhaustive()
    }
}

/// Inclusive upper bound of pow2 bucket `i` (shared with the registry's
/// cumulative histogram rendering).
pub fn bucket_upper_bound(i: usize) -> u64 {
    match i {
        0 => 0,
        64.. => u64::MAX,
        i => (1u64 << i) - 1,
    }
}

impl WindowSummary {
    /// The value at quantile `q` in `[0, 1]`, as the inclusive upper
    /// bound of the pow2 bucket holding that rank (so exact to within
    /// one bucket). `None` for an empty window.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        // lint: count ≤ 2^53 in practice; rank arithmetic is on u64
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                // The top bucket has no finite upper bound; the exact max
                // is a tighter honest answer.
                return Some(if i >= 64 {
                    self.max
                } else {
                    bucket_upper_bound(i)
                });
            }
        }
        Some(self.max)
    }

    /// Median.
    pub fn p50(&self) -> Option<u64> {
        self.quantile(0.50)
    }

    /// 90th percentile.
    pub fn p90(&self) -> Option<u64> {
        self.quantile(0.90)
    }

    /// 99th percentile.
    pub fn p99(&self) -> Option<u64> {
        self.quantile(0.99)
    }

    /// Mean of the windowed observations, `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        // lint: diagnostic-precision mean
        #[allow(clippy::cast_precision_loss)]
        (self.count != 0).then(|| self.sum as f64 / self.count as f64)
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;

    #[test]
    fn observations_merge_within_the_window() {
        let w = WindowedHist::new(10);
        w.observe(0, 4);
        w.observe(5, 6);
        w.observe(12, 100);
        let m = w.merged(15);
        assert_eq!(m.count, 3);
        assert_eq!(m.sum, 110);
        assert_eq!(m.max, 100);
    }

    #[test]
    fn old_sub_windows_age_out() {
        let w = WindowedHist::new(10);
        w.observe(0, 1_000);
        // Window is 8 sub-windows of 10 ticks; by tick 85 the epoch-0
        // slot (epochs 0 vs current 8) is out of range.
        let m = w.merged(85);
        assert_eq!(m.count, 0, "epoch-0 observation must have aged out");
        assert_eq!(m.quantile(0.99), None);
        // And the slot is recycled on the next write that maps to it.
        w.observe(80, 5);
        assert_eq!(w.merged(85).count, 1);
    }

    #[test]
    fn rotation_pins_exact_bucket_counts() {
        // Fixture for the satellite: exact bucket counts after rotation.
        let w = WindowedHist::new(100);
        // epoch 0: values 1 (bucket 1) and 3 (bucket 2)
        w.observe(0, 1);
        w.observe(99, 3);
        // epoch 1: value 3 again and 300 (bucket 9: 256..511)
        w.observe(100, 3);
        w.observe(150, 300);
        let m = w.merged(199);
        assert_eq!(m.count, 4);
        assert_eq!(m.buckets[1], 1, "one sample of value 1");
        assert_eq!(m.buckets[2], 2, "two samples of value 3");
        assert_eq!(m.buckets[9], 1, "one sample of value 300");
        assert_eq!(m.max, 300);
        // Ring wraps: epoch 8 reuses epoch 0's slot and zeroes it.
        w.observe(800, 7);
        let m = w.merged(800);
        assert_eq!(m.count, 3, "epoch-0 samples displaced by wraparound");
        assert_eq!(m.buckets[1], 0);
        assert_eq!(m.buckets[2], 1, "epoch-1 sample of 3 still in window");
        assert_eq!(m.buckets[3], 1, "new sample of 7");
    }

    #[test]
    fn quantiles_walk_the_merged_buckets() {
        let w = WindowedHist::new(1_000);
        // 98 fast ops at 100µs (bucket 7: 64..127), 2 slow at 5000µs
        // (bucket 13: 4096..8191).
        for i in 0..98 {
            w.observe(i, 100);
        }
        w.observe(98, 5_000);
        w.observe(99, 5_000);
        let m = w.merged(100);
        assert_eq!(m.count, 100);
        assert_eq!(m.p50(), Some(bucket_upper_bound(7)));
        assert_eq!(m.p90(), Some(bucket_upper_bound(7)));
        assert_eq!(m.p99(), Some(bucket_upper_bound(13)));
        assert_eq!(m.quantile(1.0), Some(bucket_upper_bound(13)));
        assert_eq!(m.max, 5_000);
    }

    #[test]
    fn top_bucket_reports_the_exact_max() {
        let w = WindowedHist::new(10);
        w.observe(0, u64::MAX);
        let m = w.merged(0);
        assert_eq!(m.quantile(0.99), Some(u64::MAX));
    }

    #[test]
    fn empty_window_mean_is_none() {
        let w = WindowedHist::new(10);
        assert_eq!(w.merged(0).mean(), None);
        w.observe(0, 10);
        w.observe(1, 20);
        // lint: tiny test floats compare exactly
        #[allow(clippy::float_cmp)]
        {
            assert_eq!(w.merged(1).mean(), Some(15.0));
        }
    }

    #[test]
    fn clear_forgets_everything() {
        let w = WindowedHist::new(10);
        w.observe(0, 42);
        w.clear();
        assert_eq!(w.merged(0).count, 0);
        w.observe(0, 7);
        assert_eq!(w.merged(0).count, 1);
    }
}
