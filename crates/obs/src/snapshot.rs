//! Point-in-time metric snapshots and their renderings.
//!
//! [`MetricsSnapshot`] is the single exchange type between the registry
//! and every sink: the CLI's `--metrics=text|json`, the bench harness's
//! `BENCH_*.json` counter columns, and tests. It is always compiled —
//! with the `enabled` feature off, [`crate::snapshot`] simply returns an
//! empty one.

use crate::json::{escape, fmt_f64};

/// One counter's summed value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterSnapshot {
    /// Stable dotted name (see [`crate::Counter::name`]).
    pub name: &'static str,
    /// Total across all shards.
    pub value: u64,
}

/// Aggregated wall time for one span path.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanSnapshot {
    /// `/`-joined nesting path, e.g. `cli.sline/sline.hashmap`.
    pub path: String,
    /// Number of completed spans on this path.
    pub count: u64,
    /// Total wall seconds across those spans.
    pub total_seconds: f64,
}

/// One histogram's bucketed distribution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Stable dotted name (see [`crate::Hist::name`]).
    pub name: &'static str,
    /// Number of observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
    /// Largest observed value.
    pub max: u64,
    /// `(inclusive_upper_bound, count)` for each non-empty power-of-two
    /// bucket, ascending.
    pub buckets: Vec<(u64, u64)>,
}

/// Windowed latency quantiles for one named operation.
///
/// Quantile fields are `None` when the trailing window is empty (the op
/// fired once but its samples have aged out) — rendered as JSON `null`
/// and omitted from the Prometheus gauges.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuantileSnapshot {
    /// Operation name (a span leaf name or an explicit
    /// [`crate::observe_latency`] op).
    pub op: String,
    /// Observations inside the trailing window.
    pub count: u64,
    /// Median latency (µs, pow2-bucket upper bound).
    pub p50: Option<u64>,
    /// 90th-percentile latency (µs).
    pub p90: Option<u64>,
    /// 99th-percentile latency (µs).
    pub p99: Option<u64>,
    /// Largest windowed observation (µs, exact).
    pub max: u64,
}

/// Everything the registry knows at one instant.
///
/// Every section is sorted by its key (counter name, span path,
/// histogram name, op name) so two snapshots of the same state are
/// equal byte-for-byte in every rendering — `BENCH_*.json` diffs and
/// the perf gate never churn on iteration order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Non-zero counters, sorted by name.
    pub counters: Vec<CounterSnapshot>,
    /// Completed-span aggregates, sorted by path.
    pub spans: Vec<SpanSnapshot>,
    /// Non-empty histograms, sorted by name.
    pub hists: Vec<HistSnapshot>,
    /// Windowed latency quantiles, sorted by op name.
    pub quantiles: Vec<QuantileSnapshot>,
}

impl MetricsSnapshot {
    /// The value of a counter by name (`None` if it never fired).
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
    }

    /// The aggregate for a span path by exact path string.
    pub fn span(&self, path: &str) -> Option<&SpanSnapshot> {
        self.spans.iter().find(|s| s.path == path)
    }

    /// The windowed quantiles for an op by exact name.
    pub fn quantile(&self, op: &str) -> Option<&QuantileSnapshot> {
        self.quantiles.iter().find(|q| q.op == op)
    }

    /// `true` when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.spans.is_empty()
            && self.hists.is_empty()
            && self.quantiles.is_empty()
    }

    /// Human-readable rendering, one item per line.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        if self.is_empty() {
            out.push_str("(no metrics recorded)\n");
            return out;
        }
        if !self.counters.is_empty() {
            out.push_str("counters:\n");
            let width = self
                .counters
                .iter()
                .map(|c| c.name.len())
                .max()
                .unwrap_or(0);
            for c in &self.counters {
                out.push_str(&format!("  {:width$}  {}\n", c.name, c.value));
            }
        }
        if !self.spans.is_empty() {
            out.push_str("spans:\n");
            let width = self.spans.iter().map(|s| s.path.len()).max().unwrap_or(0);
            for s in &self.spans {
                out.push_str(&format!(
                    "  {:width$}  {:>6}x  {:.6}s\n",
                    s.path, s.count, s.total_seconds
                ));
            }
        }
        if !self.hists.is_empty() {
            out.push_str("histograms:\n");
            for h in &self.hists {
                let mean = if h.count == 0 {
                    0.0
                } else {
                    h.sum as f64 / h.count as f64
                };
                out.push_str(&format!(
                    "  {}  n={} mean={mean:.1} max={}\n",
                    h.name, h.count, h.max
                ));
                for &(ub, n) in &h.buckets {
                    out.push_str(&format!("    <= {ub:>12}  {n}\n"));
                }
            }
        }
        if !self.quantiles.is_empty() {
            out.push_str("latency (trailing window, \u{b5}s):\n");
            let width = self.quantiles.iter().map(|q| q.op.len()).max().unwrap_or(0);
            for q in &self.quantiles {
                let fmt = |v: Option<u64>| v.map_or_else(|| "-".into(), |v| v.to_string());
                out.push_str(&format!(
                    "  {:width$}  n={} p50={} p90={} p99={} max={}\n",
                    q.op,
                    q.count,
                    fmt(q.p50),
                    fmt(q.p90),
                    fmt(q.p99),
                    q.max
                ));
            }
        }
        out
    }

    /// JSON rendering: `{"counters": {..}, "spans": [..], "histograms": [..]}`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"counters\": {");
        for (i, c) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    \"{}\": {}", escape(c.name), c.value));
        }
        if !self.counters.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("},\n  \"spans\": [");
        for (i, s) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"path\": \"{}\", \"count\": {}, \"total_seconds\": {}}}",
                escape(&s.path),
                s.count,
                fmt_f64(s.total_seconds)
            ));
        }
        if !self.spans.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("],\n  \"histograms\": [");
        for (i, h) in self.hists.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let buckets: Vec<String> = h
                .buckets
                .iter()
                .map(|&(ub, n)| format!("[{ub}, {n}]"))
                .collect();
            out.push_str(&format!(
                "\n    {{\"name\": \"{}\", \"count\": {}, \"sum\": {}, \"max\": {}, \"buckets\": [{}]}}",
                escape(h.name),
                h.count,
                h.sum,
                h.max,
                buckets.join(", ")
            ));
        }
        if !self.hists.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("],\n  \"quantiles\": [");
        for (i, q) in self.quantiles.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            // None (empty window) goes through fmt_f64's non-finite path
            // so it lands in the document as JSON null.
            let qf = |v: Option<u64>| {
                // lint: pow2 bucket bounds survive the f64 round-trip at
                // diagnostic precision
                #[allow(clippy::cast_precision_loss)]
                fmt_f64(v.map_or(f64::NAN, |v| v as f64))
            };
            out.push_str(&format!(
                "\n    {{\"op\": \"{}\", \"count\": {}, \"p50\": {}, \"p90\": {}, \"p99\": {}, \"max\": {}}}",
                escape(&q.op),
                q.count,
                qf(q.p50),
                qf(q.p90),
                qf(q.p99),
                q.max
            ));
        }
        if !self.quantiles.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{parse, Value};

    fn sample() -> MetricsSnapshot {
        MetricsSnapshot {
            counters: vec![
                CounterSnapshot {
                    name: "sline.pairs_examined",
                    value: 6,
                },
                CounterSnapshot {
                    name: "io.bytes_read",
                    value: 1024,
                },
            ],
            spans: vec![SpanSnapshot {
                path: "cli.sline/sline.hashmap".into(),
                count: 1,
                total_seconds: 0.25,
            }],
            hists: vec![HistSnapshot {
                name: "bfs.frontier_edges",
                count: 3,
                sum: 11,
                max: 8,
                buckets: vec![(1, 1), (2, 1), (8, 1)],
            }],
            quantiles: vec![
                QuantileSnapshot {
                    op: "sline.hashmap".into(),
                    count: 10,
                    p50: Some(127),
                    p90: Some(255),
                    p99: Some(4095),
                    max: 3000,
                },
                QuantileSnapshot {
                    op: "stale.op".into(),
                    count: 0,
                    p50: None,
                    p90: None,
                    p99: None,
                    max: 0,
                },
            ],
        }
    }

    #[test]
    fn text_mentions_every_item() {
        let t = sample().to_text();
        assert!(t.contains("sline.pairs_examined"));
        assert!(t.contains("cli.sline/sline.hashmap"));
        assert!(t.contains("bfs.frontier_edges"));
    }

    #[test]
    fn json_round_trips_through_parser() {
        let s = sample();
        let v = parse(&s.to_json()).expect("snapshot JSON must parse");
        let counters = v.get("counters").expect("counters key");
        assert_eq!(
            counters.get("sline.pairs_examined").unwrap().as_u64(),
            Some(6)
        );
        assert_eq!(counters.get("io.bytes_read").unwrap().as_u64(), Some(1024));
        let spans = v.get("spans").unwrap().as_array().unwrap();
        assert_eq!(spans.len(), 1);
        assert_eq!(
            spans[0].get("path").unwrap().as_str(),
            Some("cli.sline/sline.hashmap")
        );
        let hists = v.get("histograms").unwrap().as_array().unwrap();
        assert_eq!(hists[0].get("max").unwrap().as_u64(), Some(8));
        let buckets = hists[0].get("buckets").unwrap().as_array().unwrap();
        assert_eq!(buckets.len(), 3);
        let quantiles = v.get("quantiles").unwrap().as_array().unwrap();
        assert_eq!(quantiles.len(), 2);
        assert_eq!(quantiles[0].get("p99").unwrap().as_u64(), Some(4095));
        // Regression (satellite): an empty window's quantile is JSON
        // null, not an invalid token — and the whole doc still parses.
        assert_eq!(quantiles[1].get("p50"), Some(&Value::Null));
    }

    #[test]
    fn empty_snapshot_renders() {
        let e = MetricsSnapshot::default();
        assert!(e.is_empty());
        assert!(e.to_text().contains("no metrics"));
        let v = parse(&e.to_json()).unwrap();
        assert!(matches!(v.get("counters"), Some(Value::Object(o)) if o.is_empty()));
    }

    #[test]
    fn counter_lookup() {
        let s = sample();
        assert_eq!(s.counter("io.bytes_read"), Some(1024));
        assert_eq!(s.counter("nope"), None);
        assert!(s.span("cli.sline/sline.hashmap").is_some());
    }
}
