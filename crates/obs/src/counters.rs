//! The fixed counter and histogram vocabularies.
//!
//! Counters are a closed enum rather than runtime-registered strings so
//! the hot-path bump is a single array index into the sharded slabs — no
//! hashing, no locks. The names mirror the quantities the paper's
//! performance narrative turns on (§III-C.3 work heuristics, §IV
//! direction-optimizing traversals).

/// One monotonic kernel counter. `Counter::name` is the stable string
/// used in every sink (text, JSON, `BENCH_*.json`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Counter {
    /// Hyperedge pairs considered by an s-line construction (before any
    /// per-pair degree filter; the naive algorithm examines exactly
    /// `C(n_e, 2)` when no outer degree filter applies).
    SlinePairsExamined,
    /// Pairs (or whole rows, counted pairwise) skipped by the
    /// `degree < s` heuristic before any intersection/counting work.
    SlinePairsSkippedDegree,
    /// Hashmap `overlap_count[j] += 1` operations performed by the
    /// counting algorithms (hashmap, ensemble, queue-hashmap).
    SlineHashmapInsertions,
    /// Element comparisons spent inside short-circuiting sorted
    /// intersections (naive, intersection, queue-intersection).
    SlineIntersectionComparisons,
    /// Hyperedge or pair IDs enqueued into a work queue (Algorithms 1–2
    /// phase-1 output included).
    SlineQueuePushes,
    /// Chunks claimed from the dynamic [`ChunkedQueue`] by the
    /// self-scheduling queue variant.
    ///
    /// [`ChunkedQueue`]: https://docs.rs/nwhy-util
    SlineQueueSteals,
    /// s-line edges emitted (pre-canonicalization survivor count).
    SlineEdgesEmitted,
    /// Candidate pairs routed to the short-circuiting merge scan by the
    /// adaptive overlap engine.
    OverlapPathMerge,
    /// Candidate pairs routed to the galloping (exponential-search)
    /// intersection (high degree-ratio pairs).
    OverlapPathGallop,
    /// Candidate pairs routed to the packed `u64`-word bitset
    /// AND+popcount sweep (dense expanded rows).
    OverlapPathBitset,
    /// Kernel selections made by the s-line planner
    /// (`SLineBuilder::auto()` / CLI `--kernel auto`).
    PlannerKernelChosen,
    /// Full BFS rounds (one hyperedge→hypernode→hyperedge alternation).
    BfsRounds,
    /// Sparse (top-down / push) `edge_map` half-steps taken by a BFS.
    BfsSparseSteps,
    /// Dense (bottom-up / pull) `edge_map` half-steps taken by a BFS.
    BfsDenseSteps,
    /// Top-down↔bottom-up direction changes between consecutive BFS
    /// half-steps (the Ligra `|frontier| + out_edges > m/20` heuristic).
    BfsDirectionSwitches,
    /// Label-propagation rounds run by a connected-components kernel.
    CcRounds,
    /// Sparse `edge_map` half-steps taken by CC label propagation.
    CcSparseSteps,
    /// Dense `edge_map` half-steps taken by CC label propagation.
    CcDenseSteps,
    /// Direction changes between consecutive CC half-steps.
    CcDirectionSwitches,
    /// Bytes consumed by the `nwhy-io` readers.
    IoBytesRead,
    /// Input lines parsed by the text readers.
    IoLinesParsed,
    /// Incidences materialized by a reader.
    IoIncidencesRead,
}

impl Counter {
    /// Every counter, in declaration order (the snapshot iteration
    /// order).
    pub const ALL: [Counter; 22] = [
        Counter::SlinePairsExamined,
        Counter::SlinePairsSkippedDegree,
        Counter::SlineHashmapInsertions,
        Counter::SlineIntersectionComparisons,
        Counter::SlineQueuePushes,
        Counter::SlineQueueSteals,
        Counter::SlineEdgesEmitted,
        Counter::OverlapPathMerge,
        Counter::OverlapPathGallop,
        Counter::OverlapPathBitset,
        Counter::PlannerKernelChosen,
        Counter::BfsRounds,
        Counter::BfsSparseSteps,
        Counter::BfsDenseSteps,
        Counter::BfsDirectionSwitches,
        Counter::CcRounds,
        Counter::CcSparseSteps,
        Counter::CcDenseSteps,
        Counter::CcDirectionSwitches,
        Counter::IoBytesRead,
        Counter::IoLinesParsed,
        Counter::IoIncidencesRead,
    ];

    /// Stable dotted name used by every sink.
    pub fn name(self) -> &'static str {
        match self {
            Counter::SlinePairsExamined => "sline.pairs_examined",
            Counter::SlinePairsSkippedDegree => "sline.pairs_skipped_degree",
            Counter::SlineHashmapInsertions => "sline.hashmap_insertions",
            Counter::SlineIntersectionComparisons => "sline.intersection_comparisons",
            Counter::SlineQueuePushes => "sline.queue_pushes",
            Counter::SlineQueueSteals => "sline.queue_steals",
            Counter::SlineEdgesEmitted => "sline.edges_emitted",
            Counter::OverlapPathMerge => "overlap.path_merge",
            Counter::OverlapPathGallop => "overlap.path_gallop",
            Counter::OverlapPathBitset => "overlap.path_bitset",
            Counter::PlannerKernelChosen => "planner.kernel_chosen",
            Counter::BfsRounds => "bfs.rounds",
            Counter::BfsSparseSteps => "bfs.sparse_steps",
            Counter::BfsDenseSteps => "bfs.dense_steps",
            Counter::BfsDirectionSwitches => "bfs.direction_switches",
            Counter::CcRounds => "cc.rounds",
            Counter::CcSparseSteps => "cc.sparse_steps",
            Counter::CcDenseSteps => "cc.dense_steps",
            Counter::CcDirectionSwitches => "cc.direction_switches",
            Counter::IoBytesRead => "io.bytes_read",
            Counter::IoLinesParsed => "io.lines_parsed",
            Counter::IoIncidencesRead => "io.incidences_read",
        }
    }

    /// Dense index into the counter slabs.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }
}

/// One bucketed distribution (power-of-two buckets).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Hist {
    /// Hyperedge-frontier sizes per BFS half-step.
    BfsFrontierEdges,
    /// Hypernode-frontier sizes per BFS half-step.
    BfsFrontierNodes,
    /// Active-set sizes per CC label-propagation half-step.
    CcFrontier,
}

impl Hist {
    /// Every histogram, in declaration order.
    pub const ALL: [Hist; 3] = [
        Hist::BfsFrontierEdges,
        Hist::BfsFrontierNodes,
        Hist::CcFrontier,
    ];

    /// Stable dotted name used by every sink.
    pub fn name(self) -> &'static str {
        match self {
            Hist::BfsFrontierEdges => "bfs.frontier_edges",
            Hist::BfsFrontierNodes => "bfs.frontier_nodes",
            Hist::CcFrontier => "cc.frontier",
        }
    }

    /// Dense index into the histogram slab.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_are_dense_and_ordered() {
        for (i, c) in Counter::ALL.iter().enumerate() {
            assert_eq!(c.index(), i, "{}", c.name());
        }
        for (i, h) in Hist::ALL.iter().enumerate() {
            assert_eq!(h.index(), i, "{}", h.name());
        }
    }

    #[test]
    fn names_are_unique_and_dotted() {
        let mut names: Vec<&str> = Counter::ALL.iter().map(|c| c.name()).collect();
        names.extend(Hist::ALL.iter().map(|h| h.name()));
        let n = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), n);
        assert!(names.iter().all(|n| n.contains('.')));
    }
}
