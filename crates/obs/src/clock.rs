//! The monotonic tick source behind every flight-recorder timestamp and
//! windowed-quantile rotation (active build only).
//!
//! Two modes, switched at init:
//!
//! - **wall clock** (default): ticks are microseconds since the first
//!   call (a lazily-pinned [`Instant`] epoch);
//! - **manual**: ticks come from a plain atomic counter the test driver
//!   advances with [`advance`] — every rotation and every event stamp
//!   becomes deterministic, which is what the windowed-quantile fixture
//!   tests and the flight-recorder partition tests pin against.
//!
//! The mode lives in one atomic flag so reading the clock is two relaxed
//! loads on the hot path. [`reset`] restores wall-clock mode and zeroes
//! the manual counter (test isolation goes through `nwhy_obs::reset`).

use std::sync::OnceLock;
use std::time::Instant;

// lint: deliberately std, not nwhy_util::sync — this module is compiled
// out under `--cfg loom` alongside the registry, and the loom tests
// exercise the ring/window structs with caller-supplied ticks instead
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

static MANUAL_MODE: AtomicBool = AtomicBool::new(false);
static MANUAL_TICKS: AtomicU64 = AtomicU64::new(0);

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// The current tick. Microseconds since the process epoch in wall-clock
/// mode; the manual counter otherwise.
pub(crate) fn now_ticks() -> u64 {
    if MANUAL_MODE.load(Ordering::Relaxed) {
        MANUAL_TICKS.load(Ordering::Relaxed)
    } else {
        // lint: u128 microsecond counts fit u64 for the next ~584k years
        #[allow(clippy::cast_possible_truncation)]
        {
            epoch().elapsed().as_micros() as u64
        }
    }
}

/// Switches between the deterministic manual counter and the wall clock.
pub(crate) fn set_manual(on: bool) {
    MANUAL_MODE.store(on, Ordering::Relaxed);
}

/// Advances the manual counter by `n` ticks (no-op for readers while in
/// wall-clock mode, but the counter still accumulates).
pub(crate) fn advance(n: u64) {
    MANUAL_TICKS.fetch_add(n, Ordering::Relaxed);
}

/// Restores wall-clock mode and zeroes the manual counter.
pub(crate) fn reset() {
    MANUAL_MODE.store(false, Ordering::Relaxed);
    MANUAL_TICKS.store(0, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// The clock statics are process-global, so the two tests serialize.
    static GATE: Mutex<()> = Mutex::new(());

    #[test]
    fn manual_mode_is_deterministic() {
        let _g = GATE.lock().unwrap_or_else(|p| p.into_inner());
        set_manual(true);
        MANUAL_TICKS.store(0, Ordering::Relaxed);
        assert_eq!(now_ticks(), 0);
        advance(7);
        assert_eq!(now_ticks(), 7);
        advance(3);
        assert_eq!(now_ticks(), 10);
        reset();
        assert!(!MANUAL_MODE.load(Ordering::Relaxed));
    }

    #[test]
    fn wall_clock_is_monotonic() {
        let _g = GATE.lock().unwrap_or_else(|p| p.into_inner());
        reset();
        let a = now_ticks();
        let b = now_ticks();
        assert!(b >= a);
    }
}
