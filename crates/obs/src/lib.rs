//! `nwhy-obs` — zero-cost observability for the nwhy-rs workspace.
//!
//! A vendored-dependency-free span/counter/histogram registry:
//!
//! - **RAII spans** ([`span`]) that nest via a thread-local stack and
//!   aggregate per-phase wall time by `/`-joined path;
//! - **sharded relaxed-atomic counters** ([`add`]/[`incr`]) safe to bump
//!   from rayon workers, built on [`nwhy_util::sync`] atomics so the
//!   sharded core is loom-model-checkable (`tests/loom.rs`);
//! - **power-of-two histograms** ([`observe`]) for frontier-size style
//!   distributions;
//! - **sinks**: [`snapshot`] → [`MetricsSnapshot`] with
//!   [`MetricsSnapshot::to_text`] / [`MetricsSnapshot::to_json`], and
//!   [`take_trace`] / [`chrome_trace`] for `chrome://tracing`.
//!
//! # Zero cost when disabled
//!
//! All cfg-gating lives *here*. Downstream crates call these functions
//! unconditionally; with the `enabled` feature off every entry point is
//! an empty `#[inline]` body and [`Span`] is a ZST, so instrumented
//! kernels carry zero added atomic traffic (`tests/noop.rs` asserts
//! this). Hot loops that keep worker-local tallies guard them with the
//! `const fn` [`enabled`] so the optimizer deletes the bookkeeping:
//!
//! ```
//! let mut local_pairs = 0u64;
//! for _ in 0..3 {
//!     if nwhy_obs::enabled() {
//!         local_pairs += 1;
//!     }
//! }
//! nwhy_obs::add(nwhy_obs::Counter::SlinePairsExamined, local_pairs);
//! ```
//!
//! Under `--cfg loom` the registry is also compiled out (the loom atomic
//! stand-in cannot back a lazy global); the model checker exercises
//! [`sharded::ShardedU64`] directly.

#[cfg(all(feature = "enabled", not(loom)))]
mod clock;
mod counters;
mod ctx;
#[cfg(all(feature = "enabled", not(loom)))]
mod flight;
pub mod json;
pub mod prom;
#[cfg(all(feature = "enabled", not(loom)))]
mod registry;
pub mod ring;
pub mod sharded;
mod snapshot;
mod trace;
pub mod window;

pub use counters::{Counter, Hist};
pub use ctx::{current_request_id, CtxGuard, RequestCtx};
pub use prom::render_prometheus;
pub use ring::{FlightEvent, FlightKind};
pub use snapshot::{
    CounterSnapshot, HistSnapshot, MetricsSnapshot, QuantileSnapshot, SpanSnapshot,
};
pub use trace::{to_chrome_trace, TraceEvent};

/// `true` iff the `enabled` feature is on (and the build is not a loom
/// model run). `const`, so `if nwhy_obs::enabled() { … }` folds away
/// entirely in disabled builds.
#[inline]
pub const fn enabled() -> bool {
    cfg!(all(feature = "enabled", not(loom)))
}

/// Adds `n` to a counter. No-op when disabled.
#[inline]
pub fn add(counter: Counter, n: u64) {
    #[cfg(all(feature = "enabled", not(loom)))]
    if n != 0 {
        registry::add(counter, n);
    }
    #[cfg(not(all(feature = "enabled", not(loom))))]
    let _ = (counter, n);
}

/// Adds 1 to a counter. No-op when disabled.
#[inline]
pub fn incr(counter: Counter) {
    add(counter, 1);
}

/// The current summed value of a counter (always 0 when disabled).
#[inline]
pub fn counter_value(counter: Counter) -> u64 {
    #[cfg(all(feature = "enabled", not(loom)))]
    {
        registry::counter_value(counter)
    }
    #[cfg(not(all(feature = "enabled", not(loom))))]
    {
        let _ = counter;
        0
    }
}

/// Records one observation into a histogram. No-op when disabled.
#[inline]
pub fn observe(hist: Hist, value: u64) {
    #[cfg(all(feature = "enabled", not(loom)))]
    registry::observe(hist, value);
    #[cfg(not(all(feature = "enabled", not(loom))))]
    let _ = (hist, value);
}

/// A RAII timing span. Created by [`span`]; records its wall time into
/// the per-path aggregates and the Chrome trace buffer when dropped.
/// A ZST no-op when disabled.
#[derive(Debug)]
#[must_use = "a span measures the time until it is dropped"]
pub struct Span {
    #[cfg(all(feature = "enabled", not(loom)))]
    inner: registry::SpanInner,
}

/// Opens a span named `name`, nested under the innermost span still open
/// on this thread. Hold the returned guard for the duration of the
/// phase:
///
/// ```
/// {
///     let _span = nwhy_obs::span("doc.example");
///     // … timed work …
/// }
/// ```
#[inline]
pub fn span(name: &'static str) -> Span {
    #[cfg(all(feature = "enabled", not(loom)))]
    {
        Span {
            inner: registry::span_enter(name),
        }
    }
    #[cfg(not(all(feature = "enabled", not(loom))))]
    {
        let _ = name;
        Span {}
    }
}

impl Drop for Span {
    #[inline]
    fn drop(&mut self) {
        #[cfg(all(feature = "enabled", not(loom)))]
        registry::span_exit(&self.inner);
    }
}

/// A point-in-time snapshot of all counters, span aggregates, and
/// histograms. Empty when disabled.
pub fn snapshot() -> MetricsSnapshot {
    #[cfg(all(feature = "enabled", not(loom)))]
    {
        registry::snapshot()
    }
    #[cfg(not(all(feature = "enabled", not(loom))))]
    {
        MetricsSnapshot::default()
    }
}

/// Zeroes every counter and histogram and clears span aggregates and the
/// trace buffer. Intended between measurement windows (e.g. bench
/// trials), not concurrently with active kernels.
pub fn reset() {
    #[cfg(all(feature = "enabled", not(loom)))]
    registry::reset();
}

/// Drains and returns the buffered trace events (capped; see crate
/// docs). Empty when disabled.
pub fn take_trace() -> Vec<TraceEvent> {
    #[cfg(all(feature = "enabled", not(loom)))]
    {
        registry::take_trace()
    }
    #[cfg(not(all(feature = "enabled", not(loom))))]
    {
        Vec::new()
    }
}

/// Drains the trace buffer and renders it as a Chrome `trace_event`
/// JSON document.
pub fn chrome_trace() -> String {
    to_chrome_trace(&take_trace())
}

/// Records one latency observation (µs) into `op`'s trailing window.
/// Span closes call this automatically with the span's leaf name;
/// serving layers may call it directly for endpoint-level ops. No-op
/// when disabled.
#[inline]
pub fn observe_latency(op: &'static str, micros: u64) {
    #[cfg(all(feature = "enabled", not(loom)))]
    registry::observe_latency(op, micros);
    #[cfg(not(all(feature = "enabled", not(loom))))]
    let _ = (op, micros);
}

/// Switches the telemetry clock between wall-clock microseconds and a
/// deterministic manual counter (see [`advance_ticks`]). Tests use the
/// manual mode so flight-event stamps and window rotation are exact.
/// No-op when disabled.
pub fn set_manual_ticks(on: bool) {
    #[cfg(all(feature = "enabled", not(loom)))]
    clock::set_manual(on);
    #[cfg(not(all(feature = "enabled", not(loom))))]
    let _ = on;
}

/// Advances the manual telemetry clock by `n` ticks. No-op when
/// disabled (or while in wall-clock mode).
pub fn advance_ticks(n: u64) {
    #[cfg(all(feature = "enabled", not(loom)))]
    clock::advance(n);
    #[cfg(not(all(feature = "enabled", not(loom))))]
    let _ = n;
}

/// Snapshot of the newest `n` flight-recorder events, oldest first.
/// Always empty when disabled.
pub fn flight_drain_last(n: usize) -> Vec<FlightEvent> {
    #[cfg(all(feature = "enabled", not(loom)))]
    {
        flight::drain_last(n)
    }
    #[cfg(not(all(feature = "enabled", not(loom))))]
    {
        let _ = n;
        Vec::new()
    }
}

/// Configures the flight-recorder anomaly hook: when a span's duration
/// reaches `anomaly_us`, the ring is dumped as a Chrome-trace JSON file
/// at `dump_path`. `None` disables the respective half. No-op when
/// disabled.
pub fn flight_configure(anomaly_us: Option<u64>, dump_path: Option<&std::path::Path>) {
    #[cfg(all(feature = "enabled", not(loom)))]
    flight::configure(anomaly_us, dump_path);
    #[cfg(not(all(feature = "enabled", not(loom))))]
    let _ = (anomaly_us, dump_path);
}

/// Renders the newest `n` flight-recorder events as a Chrome
/// `trace_event` JSON document (span closes as complete slices, opens as
/// instants, counter deltas as counter samples; request ids in
/// `args.req`). An empty document when disabled.
pub fn flight_chrome_trace(n: usize) -> String {
    #[cfg(all(feature = "enabled", not(loom)))]
    {
        flight::render_chrome(&flight::drain_last(n))
    }
    #[cfg(not(all(feature = "enabled", not(loom))))]
    {
        let _ = n;
        String::from("{\"traceEvents\":[]}")
    }
}
