//! Prometheus text exposition (format version 0.0.4) for
//! [`MetricsSnapshot`].
//!
//! Dependency-free renderer following the exposition spec:
//!
//! - metric names are the dotted registry names with `.` → `_` under the
//!   `nwhy_` namespace, `_total`-suffixed for counters;
//! - every family gets `# HELP` and `# TYPE` comment lines;
//! - histograms render as cumulative `_bucket{le="…"}` series ending in
//!   `le="+Inf"`, plus `_sum` and `_count`;
//! - windowed quantiles render as gauges labelled
//!   `{op="…",quantile="0.5|0.9|0.99"}` plus per-op `_count`/`_max`
//!   gauges (empty windows emit only the `_count 0` sample — a gauge of
//!   nothing, never `NaN`);
//! - label values escape `\`, `"` and newlines per the spec.
//!
//! Snapshot sections are already key-sorted, so the rendering is
//! byte-stable across repeated scrapes of the same state.

use crate::snapshot::MetricsSnapshot;

/// Maps a dotted registry name into the Prometheus namespace:
/// `sline.pairs_examined` → `nwhy_sline_pairs_examined`.
fn metric_name(dotted: &str) -> String {
    let mut out = String::with_capacity(dotted.len() + 5);
    out.push_str("nwhy_");
    for c in dotted.chars() {
        if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Escapes a label value per the exposition spec (`\` → `\\`,
/// `"` → `\"`, newline → `\n`).
fn escape_label(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Formats a sample value. Prometheus accepts integers and Go-syntax
/// floats; non-finite values never reach this (callers skip them).
fn sample_f64(x: f64) -> String {
    format!("{x}")
}

/// Renders a snapshot as a Prometheus text-format exposition document.
pub fn render_prometheus(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();

    for c in &snap.counters {
        let name = metric_name(c.name) + "_total";
        out.push_str(&format!(
            "# HELP {name} Cumulative nwhy counter {orig}.\n# TYPE {name} counter\n{name} {}\n",
            c.value,
            orig = c.name
        ));
    }

    if !snap.spans.is_empty() {
        out.push_str(
            "# HELP nwhy_span_seconds_total Cumulative wall seconds per span path.\n\
             # TYPE nwhy_span_seconds_total counter\n",
        );
        for s in &snap.spans {
            out.push_str(&format!(
                "nwhy_span_seconds_total{{path=\"{}\"}} {}\n",
                escape_label(&s.path),
                sample_f64(s.total_seconds)
            ));
        }
        out.push_str(
            "# HELP nwhy_span_count_total Completed spans per span path.\n\
             # TYPE nwhy_span_count_total counter\n",
        );
        for s in &snap.spans {
            out.push_str(&format!(
                "nwhy_span_count_total{{path=\"{}\"}} {}\n",
                escape_label(&s.path),
                s.count
            ));
        }
    }

    for h in &snap.hists {
        let name = metric_name(h.name);
        out.push_str(&format!(
            "# HELP {name} Power-of-two distribution {orig}.\n# TYPE {name} histogram\n",
            orig = h.name
        ));
        let mut cumulative = 0u64;
        for &(ub, n) in &h.buckets {
            cumulative += n;
            // The top pow2 bucket's bound is u64::MAX; fold it into +Inf
            // rather than printing an 20-digit le few scrapers parse.
            if ub == u64::MAX {
                continue;
            }
            out.push_str(&format!("{name}_bucket{{le=\"{ub}\"}} {cumulative}\n"));
        }
        out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {}\n", h.count));
        out.push_str(&format!("{name}_sum {}\n", h.sum));
        out.push_str(&format!("{name}_count {}\n", h.count));
    }

    if !snap.quantiles.is_empty() {
        out.push_str(
            "# HELP nwhy_op_latency_microseconds Trailing-window latency quantiles per operation.\n\
             # TYPE nwhy_op_latency_microseconds gauge\n",
        );
        for q in &snap.quantiles {
            let op = escape_label(&q.op);
            for (label, v) in [("0.5", q.p50), ("0.9", q.p90), ("0.99", q.p99)] {
                if let Some(v) = v {
                    out.push_str(&format!(
                        "nwhy_op_latency_microseconds{{op=\"{op}\",quantile=\"{label}\"}} {v}\n"
                    ));
                }
            }
        }
        out.push_str(
            "# HELP nwhy_op_latency_microseconds_count Observations inside the trailing window.\n\
             # TYPE nwhy_op_latency_microseconds_count gauge\n",
        );
        for q in &snap.quantiles {
            out.push_str(&format!(
                "nwhy_op_latency_microseconds_count{{op=\"{}\"}} {}\n",
                escape_label(&q.op),
                q.count
            ));
        }
        out.push_str(
            "# HELP nwhy_op_latency_microseconds_max Largest windowed observation per operation.\n\
             # TYPE nwhy_op_latency_microseconds_max gauge\n",
        );
        for q in &snap.quantiles {
            if q.count == 0 {
                continue;
            }
            out.push_str(&format!(
                "nwhy_op_latency_microseconds_max{{op=\"{}\"}} {}\n",
                escape_label(&q.op),
                q.max
            ));
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::{CounterSnapshot, HistSnapshot, QuantileSnapshot, SpanSnapshot};

    fn sample() -> MetricsSnapshot {
        MetricsSnapshot {
            counters: vec![CounterSnapshot {
                name: "sline.pairs_examined",
                value: 6,
            }],
            spans: vec![SpanSnapshot {
                path: "cli.sline/sline.hashmap".into(),
                count: 2,
                total_seconds: 0.25,
            }],
            hists: vec![HistSnapshot {
                name: "bfs.frontier_edges",
                count: 3,
                sum: 11,
                max: 8,
                buckets: vec![(1, 1), (3, 1), (u64::MAX, 1)],
            }],
            quantiles: vec![
                QuantileSnapshot {
                    op: "sline.hashmap".into(),
                    count: 10,
                    p50: Some(127),
                    p90: Some(255),
                    p99: Some(4095),
                    max: 3000,
                },
                QuantileSnapshot {
                    op: "empty.window".into(),
                    count: 0,
                    p50: None,
                    p90: None,
                    p99: None,
                    max: 0,
                },
            ],
        }
    }

    #[test]
    fn counters_become_total_series() {
        let doc = render_prometheus(&sample());
        assert!(doc.contains("# TYPE nwhy_sline_pairs_examined_total counter\n"));
        assert!(doc.contains("nwhy_sline_pairs_examined_total 6\n"));
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_end_in_inf() {
        let doc = render_prometheus(&sample());
        assert!(doc.contains("# TYPE nwhy_bfs_frontier_edges histogram\n"));
        assert!(doc.contains("nwhy_bfs_frontier_edges_bucket{le=\"1\"} 1\n"));
        assert!(doc.contains("nwhy_bfs_frontier_edges_bucket{le=\"3\"} 2\n"));
        assert!(doc.contains("nwhy_bfs_frontier_edges_bucket{le=\"+Inf\"} 3\n"));
        assert!(doc.contains("nwhy_bfs_frontier_edges_sum 11\n"));
        assert!(doc.contains("nwhy_bfs_frontier_edges_count 3\n"));
    }

    #[test]
    fn quantiles_become_labelled_gauges() {
        let doc = render_prometheus(&sample());
        assert!(doc.contains(
            "nwhy_op_latency_microseconds{op=\"sline.hashmap\",quantile=\"0.99\"} 4095\n"
        ));
        assert!(doc.contains("nwhy_op_latency_microseconds_count{op=\"sline.hashmap\"} 10\n"));
        assert!(doc.contains("nwhy_op_latency_microseconds_max{op=\"sline.hashmap\"} 3000\n"));
        // empty window: count sample only, no NaN gauges
        assert!(doc.contains("nwhy_op_latency_microseconds_count{op=\"empty.window\"} 0\n"));
        assert!(!doc.contains("quantile=\"0.5\"} NaN"));
        assert!(!doc.contains("NaN"));
        assert!(!doc.contains("_max{op=\"empty.window\"}"));
    }

    #[test]
    fn label_values_escape_spec_characters() {
        assert_eq!(escape_label("a\\b\"c\nd"), "a\\\\b\\\"c\\nd");
        let snap = MetricsSnapshot {
            spans: vec![SpanSnapshot {
                path: "odd\"path\\with\nnewline".into(),
                count: 1,
                total_seconds: 1.0,
            }],
            ..MetricsSnapshot::default()
        };
        let doc = render_prometheus(&snap);
        assert!(doc.contains("path=\"odd\\\"path\\\\with\\nnewline\""));
    }

    #[test]
    fn empty_snapshot_renders_empty_document() {
        assert_eq!(render_prometheus(&MetricsSnapshot::default()), "");
    }

    #[test]
    fn rendering_is_deterministic() {
        let s = sample();
        assert_eq!(render_prometheus(&s), render_prometheus(&s));
    }
}
