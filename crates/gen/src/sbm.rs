//! Bipartite stochastic block model.
//!
//! Hypernodes and hyperedges are partitioned into blocks; an incidence
//! `(e, v)` appears with probability `p_in` when the hyperedge's block
//! matches the hypernode's block and `p_out` otherwise. With
//! `p_in ≫ p_out` this plants crisp community structure (block-diagonal
//! incidence matrix) — the ground-truth setting for evaluating the
//! s-component and CC pipelines, complementing the window-based
//! [`crate::communities`] generator.
//!
//! Sampling is geometric-skip (O(expected incidences), not O(n·m)), so
//! sparse large instances are cheap.

use crate::rng::Rng;
use nwhy_core::{BiEdgeList, Hypergraph, Id};

/// Parameters for [`sbm_bipartite`].
#[derive(Debug, Clone, Copy)]
pub struct SbmParams {
    /// Number of blocks (communities).
    pub blocks: usize,
    /// Hypernodes per block.
    pub nodes_per_block: usize,
    /// Hyperedges per block.
    pub edges_per_block: usize,
    /// Within-block incidence probability.
    pub p_in: f64,
    /// Cross-block incidence probability.
    pub p_out: f64,
    /// PRNG seed.
    pub seed: u64,
}

/// Geometric-skip Bernoulli sampling over a strip of `len` cells with
/// probability `p`, pushing hit offsets through `emit`.
fn sample_strip(len: usize, p: f64, rng: &mut Rng, mut emit: impl FnMut(usize)) {
    if p <= 0.0 || len == 0 {
        return;
    }
    if p >= 1.0 {
        for i in 0..len {
            emit(i);
        }
        return;
    }
    let log_q = (1.0 - p).ln();
    let mut i: usize = 0;
    loop {
        // skip = floor(ln(u) / ln(1-p))
        let skip = (rng.unit_open().ln() / log_q) as usize;
        i = match i.checked_add(skip) {
            Some(x) => x,
            None => return,
        };
        if i >= len {
            return;
        }
        emit(i);
        i += 1;
    }
}

/// Generates a bipartite SBM hypergraph. Block `b` owns hypernodes
/// `[b·npb, (b+1)·npb)` and hyperedges `[b·epb, (b+1)·epb)`.
///
/// # Panics
/// Panics if probabilities are outside `[0, 1]`.
pub fn sbm_bipartite(p: SbmParams) -> Hypergraph {
    assert!((0.0..=1.0).contains(&p.p_in), "p_in out of [0,1]");
    assert!((0.0..=1.0).contains(&p.p_out), "p_out out of [0,1]");
    let mut rng = Rng::new(p.seed);
    let nv = p.blocks * p.nodes_per_block;
    let ne = p.blocks * p.edges_per_block;
    let mut incidences: Vec<(Id, Id)> = Vec::new();

    for e in 0..ne {
        let eb = e.checked_div(p.edges_per_block).unwrap_or(0);
        for vb in 0..p.blocks {
            let prob = if vb == eb { p.p_in } else { p.p_out };
            let base = vb * p.nodes_per_block;
            sample_strip(p.nodes_per_block, prob, &mut rng, |off| {
                incidences.push((e as Id, (base + off) as Id));
            });
        }
    }
    let bel = BiEdgeList::from_incidences(ne, nv, incidences);
    Hypergraph::from_biedgelist(&bel)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> SbmParams {
        SbmParams {
            blocks: 4,
            nodes_per_block: 100,
            edges_per_block: 40,
            p_in: 0.08,
            p_out: 0.001,
            seed: 17,
        }
    }

    #[test]
    fn shape_matches_request() {
        let h = sbm_bipartite(params());
        assert_eq!(h.num_hypernodes(), 400);
        assert_eq!(h.num_hyperedges(), 160);
    }

    #[test]
    fn within_block_density_dominates() {
        let h = sbm_bipartite(params());
        let mut inside = 0usize;
        let mut outside = 0usize;
        for e in 0..160u32 {
            let eb = (e / 40) as usize;
            for &v in h.edge_members(e) {
                if (v as usize) / 100 == eb {
                    inside += 1;
                } else {
                    outside += 1;
                }
            }
        }
        // expected inside ≈ 160·100·0.08 = 1280; outside ≈ 160·300·0.001 = 48
        assert!(inside > 10 * outside, "inside {inside} outside {outside}");
    }

    #[test]
    fn expected_incidence_count_is_near_mean() {
        let h = sbm_bipartite(params());
        let expected = 160.0 * (100.0 * 0.08 + 300.0 * 0.001);
        let got = h.num_incidences() as f64;
        assert!(
            (got - expected).abs() < expected * 0.2,
            "got {got}, expected ≈ {expected}"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(sbm_bipartite(params()), sbm_bipartite(params()));
        let other = sbm_bipartite(SbmParams {
            seed: 18,
            ..params()
        });
        assert_ne!(sbm_bipartite(params()), other);
    }

    #[test]
    fn p_zero_and_one_extremes() {
        let empty = sbm_bipartite(SbmParams {
            p_in: 0.0,
            p_out: 0.0,
            ..params()
        });
        assert_eq!(empty.num_incidences(), 0);
        let full_in = sbm_bipartite(SbmParams {
            blocks: 2,
            nodes_per_block: 5,
            edges_per_block: 2,
            p_in: 1.0,
            p_out: 0.0,
            seed: 1,
        });
        // every within-block cell present: 4 edges × 5 nodes
        assert_eq!(full_in.num_incidences(), 20);
        for e in 0..2u32 {
            assert_eq!(full_in.edge_members(e), &[0, 1, 2, 3, 4]);
        }
    }

    #[test]
    fn planted_blocks_recovered_by_cc_when_disconnected() {
        // p_out = 0 → each block is (at least) its own component family
        let h = sbm_bipartite(SbmParams {
            p_out: 0.0,
            p_in: 0.5,
            ..params()
        });
        let cc = nwhy_core::algorithms::hyper_cc::hyper_cc(&h);
        // no label may span two blocks
        for e in 0..160usize {
            for f in 0..160usize {
                if cc.edge_labels[e] == cc.edge_labels[f] {
                    // same component ⇒ could be same block (or isolated
                    // labels, which are unique anyway)
                    let same_block = e / 40 == f / 40;
                    let both_nonempty = h.edge_degree(e as u32) > 0 && h.edge_degree(f as u32) > 0;
                    if both_nonempty && e != f {
                        assert!(same_block, "edges {e},{f} fused across blocks");
                    }
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "p_in out of")]
    fn bad_probability_rejected() {
        sbm_bipartite(SbmParams {
            p_in: 1.5,
            ..params()
        });
    }
}
