//! Planted overlapping communities.
//!
//! The paper's social-network hypergraphs were "materialized by running a
//! community detection algorithm on the original dataset … each community
//! is considered as a hyperedge and each member of a community as a
//! hypernode" (§IV-B). This generator goes the other way: it plants
//! communities directly. Hypernodes live on a ring; each community picks
//! a random center and spans a contiguous window plus a few long-range
//! members, giving overlapping hyperedges with locality — the structure
//! community detection recovers from real social graphs.

use crate::rng::Rng;
use nwhy_core::{BiEdgeList, Hypergraph, Id};

/// Parameters for [`planted_communities`].
#[derive(Debug, Clone, Copy)]
pub struct CommunityParams {
    /// Number of hypernodes.
    pub num_nodes: usize,
    /// Number of communities (hyperedges).
    pub num_communities: usize,
    /// Smallest community size.
    pub min_size: usize,
    /// Largest community size (Pareto-tailed between min and max).
    pub max_size: usize,
    /// Fraction of members drawn from outside the local window
    /// (long-range overlap), in `[0, 1]`.
    pub rewire: f64,
    /// PRNG seed.
    pub seed: u64,
}

/// Generates a planted-community hypergraph.
///
/// # Panics
/// Panics if sizes are inconsistent (`min_size > max_size`,
/// `max_size > num_nodes`, or a nonsensical `rewire`).
pub fn planted_communities(p: CommunityParams) -> Hypergraph {
    assert!(p.min_size <= p.max_size, "min_size > max_size");
    assert!(p.max_size <= p.num_nodes, "max_size exceeds node count");
    assert!((0.0..=1.0).contains(&p.rewire), "rewire must be in [0,1]");
    let mut rng = Rng::new(p.seed);
    let n = p.num_nodes;
    let mut memberships: Vec<Vec<Id>> = Vec::with_capacity(p.num_communities);

    for _ in 0..p.num_communities {
        // Pareto-tailed size in [min_size, max_size].
        let span = (p.max_size - p.min_size) as f64;
        let raw =
            p.min_size as f64 + span * (rng.pareto(2.5) - 1.0).min(span.max(1.0)) / span.max(1.0);
        let size = (raw.round() as usize).clamp(p.min_size, p.max_size);
        if size == 0 || n == 0 {
            memberships.push(Vec::new());
            continue;
        }
        let center = rng.below(n as u64) as usize;
        let mut members: Vec<Id> = Vec::with_capacity(size);
        for k in 0..size {
            let local = ((center + k) % n) as Id;
            let v = if rng.unit_open() < p.rewire {
                rng.below(n as u64) as Id
            } else {
                local
            };
            members.push(v);
        }
        members.sort_unstable();
        members.dedup();
        memberships.push(members);
    }

    let incidences: Vec<(Id, Id)> = memberships
        .iter()
        .enumerate()
        .flat_map(|(e, vs)| vs.iter().map(move |&v| (e as Id, v)))
        .collect();
    let bel = BiEdgeList::from_incidences(p.num_communities, n, incidences);
    Hypergraph::from_biedgelist(&bel)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> CommunityParams {
        CommunityParams {
            num_nodes: 1000,
            num_communities: 300,
            min_size: 4,
            max_size: 60,
            rewire: 0.1,
            seed: 21,
        }
    }

    #[test]
    fn shape_matches_request() {
        let h = planted_communities(params());
        assert_eq!(h.num_hypernodes(), 1000);
        assert_eq!(h.num_hyperedges(), 300);
    }

    #[test]
    fn community_sizes_within_bounds() {
        let h = planted_communities(params());
        for e in 0..300u32 {
            let d = h.edge_degree(e);
            // dedup after rewiring can only shrink
            assert!(d <= 60, "community {e} size {d}");
            assert!(d >= 2, "community {e} size {d}");
        }
    }

    #[test]
    fn communities_overlap() {
        let h = planted_communities(params());
        // overlapping communities ⇒ some hypernode in ≥ 2 hyperedges
        let overlapping = (0..1000u32).filter(|&v| h.node_degree(v) >= 2).count();
        assert!(overlapping > 100, "only {overlapping} overlapping nodes");
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(planted_communities(params()), planted_communities(params()));
    }

    #[test]
    fn zero_rewire_gives_contiguous_windows() {
        let h = planted_communities(CommunityParams {
            rewire: 0.0,
            ..params()
        });
        // with no rewiring each community is a contiguous ring window:
        // members form a run modulo n (sorted, gaps only at the wrap)
        for e in 0..300u32 {
            let m = h.edge_members(e);
            let gaps = m.windows(2).filter(|w| w[1] - w[0] != 1).count();
            assert!(gaps <= 1, "community {e} not a ring window: {m:?}");
        }
    }

    #[test]
    #[should_panic(expected = "max_size exceeds")]
    fn oversize_rejected() {
        planted_communities(CommunityParams {
            max_size: 2000,
            ..params()
        });
    }
}
