//! Deterministic PRNG for the generators (SplitMix64, same algorithm as
//! `nwgraph::random` so every dataset twin is reproducible from its seed
//! across platforms).

/// SplitMix64 PRNG.
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Seeds the generator.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `0..bound` (`bound > 0`).
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform `f64` in `(0, 1]` (never exactly 0, safe for `powf` of
    /// negative exponents).
    #[inline]
    pub fn unit_open(&mut self) -> f64 {
        (((self.next_u64() >> 11) + 1) as f64) * (1.0 / (1u64 << 53) as f64)
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }

    /// A Pareto-tailed sample `u^(-1/(alpha-1))`, `alpha > 1`: the heavy
    /// tail that gives social-network degree skew.
    #[inline]
    pub fn pareto(&mut self, alpha: f64) -> f64 {
        debug_assert!(alpha > 1.0);
        self.unit_open().powf(-1.0 / (alpha - 1.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let mut a = Rng::new(5);
        let mut b = Rng::new(5);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn unit_open_never_zero() {
        let mut rng = Rng::new(1);
        for _ in 0..100_000 {
            let u = rng.unit_open();
            assert!(u > 0.0 && u <= 1.0);
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = Rng::new(2);
        let mut xs: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(xs, (0..100).collect::<Vec<_>>()); // astronomically unlikely
    }

    #[test]
    fn pareto_at_least_one() {
        let mut rng = Rng::new(3);
        for _ in 0..10_000 {
            assert!(rng.pareto(2.5) >= 1.0);
        }
    }

    #[test]
    fn pareto_is_heavy_tailed() {
        let mut rng = Rng::new(4);
        let samples: Vec<f64> = (0..100_000).map(|_| rng.pareto(2.2)).collect();
        let max = samples.iter().cloned().fold(0.0, f64::max);
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        // tail produces samples far above the mean
        assert!(max > mean * 20.0, "max {max} mean {mean}");
    }
}
