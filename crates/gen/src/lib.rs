//! `nwhy-gen` — synthetic hypergraph generators.
//!
//! The paper evaluates on SNAP/KONECT-derived hypergraphs (Table I) plus a
//! Hygra-generated uniform random hypergraph (Rand1). Those raw datasets
//! are not redistributable inside this repository, so this crate generates
//! *synthetic twins*: hypergraphs whose size, degree averages, and skew
//! match each Table I row at a configurable scale. The algorithms under
//! benchmark are sensitive to exactly those statistics (they drive the
//! indirection fan-out, frontier shapes, and load imbalance), which is why
//! the substitution preserves the experiments' comparative shape (see
//! DESIGN.md).
//!
//! - [`uniform`] — every hyperedge draws `k` distinct hypernodes uniformly
//!   (the Rand1 recipe);
//! - [`powerlaw`] — bipartite configuration model with Pareto-tailed
//!   degree sequences on both sides (the social/web-network shape);
//! - [`communities`] — planted overlapping communities, mirroring how the
//!   com-Orkut/Friendster hypergraphs were materialized (each community =
//!   one hyperedge);
//! - [`profiles`] — named scaled twins of the six Table I rows.
//!
//! # Examples
//!
//! ```
//! use nwhy_gen::profiles::profile_by_name;
//! use nwhy_gen::uniform_random;
//!
//! // the Rand1 recipe directly
//! let h = uniform_random(1000, 500, 10, 42);
//! assert_eq!(h.stats().max_edge_degree, 10);
//!
//! // or a Table I twin at 1/100000 scale
//! let twin = profile_by_name("com-Orkut").unwrap().generate(100_000, 42);
//! assert!(twin.num_hyperedges() >= 16);
//! ```

#![forbid(unsafe_code)]
// lint: generators narrow rounded f64 samples and rng draws into sizes and
// Ids; every value is bounded by a generator parameter (n, target, k) that
// already fits the target type, unlike nwhy-core's aliased ID spaces where
// the xtask lint pass bans raw casts outright.
#![allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]

pub mod communities;
pub mod powerlaw;
pub mod profiles;
pub mod rng;
pub mod sbm;
pub mod uniform;

pub use communities::planted_communities;
pub use powerlaw::powerlaw_hypergraph;
pub use profiles::{DatasetProfile, TableOneRow, TABLE1};
pub use sbm::sbm_bipartite;
pub use uniform::uniform_random;
