//! Uniform random hypergraphs — the Rand1 recipe.
//!
//! "For Rand1, the hypervertices for each of the hyperedge are chosen
//! uniformly at random" (§IV-B). Every hyperedge independently samples
//! `edge_size` distinct hypernodes; hypernode degrees then concentrate
//! tightly around `num_edges · edge_size / num_nodes` (the paper's Rand1
//! row: d̄_v = d̄_e = 10, Δ_v = 34 — a light Poisson tail, no skew).

use crate::rng::Rng;
use nwhy_core::{Hypergraph, Id};

/// Generates a uniform random hypergraph with `num_edges` hyperedges of
/// exactly `edge_size` distinct hypernodes drawn from `0..num_nodes`.
///
/// # Panics
/// Panics if `edge_size > num_nodes` (cannot draw that many distinct
/// hypernodes) unless both are 0.
pub fn uniform_random(
    num_nodes: usize,
    num_edges: usize,
    edge_size: usize,
    seed: u64,
) -> Hypergraph {
    assert!(
        edge_size <= num_nodes,
        "edge_size {edge_size} exceeds hypernode count {num_nodes}"
    );
    let mut rng = Rng::new(seed);
    let mut memberships: Vec<Vec<Id>> = Vec::with_capacity(num_edges);
    let mut scratch: Vec<Id> = Vec::with_capacity(edge_size);
    for _ in 0..num_edges {
        scratch.clear();
        // rejection sampling; edge_size << num_nodes in all profiles
        while scratch.len() < edge_size {
            let v = rng.below(num_nodes as u64) as Id;
            if !scratch.contains(&v) {
                scratch.push(v);
            }
        }
        memberships.push(scratch.clone());
    }
    // Fix the hypernode ID space at num_nodes even if some IDs unseen.
    let incidences: Vec<(Id, Id)> = memberships
        .iter()
        .enumerate()
        .flat_map(|(e, vs)| vs.iter().map(move |&v| (e as Id, v)))
        .collect();
    let mut bel = nwhy_core::BiEdgeList::from_incidences(num_edges, num_nodes, incidences);
    bel.sort_dedup();
    Hypergraph::from_biedgelist(&bel)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_is_exact() {
        let h = uniform_random(1000, 500, 10, 42);
        assert_eq!(h.num_hypernodes(), 1000);
        assert_eq!(h.num_hyperedges(), 500);
        assert_eq!(h.num_incidences(), 5000);
        for e in 0..500u32 {
            assert_eq!(h.edge_degree(e), 10);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = uniform_random(100, 50, 5, 7);
        let b = uniform_random(100, 50, 5, 7);
        assert_eq!(a, b);
        let c = uniform_random(100, 50, 5, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn node_degrees_concentrate() {
        let h = uniform_random(1000, 1000, 10, 3);
        let stats = h.stats();
        assert!((stats.avg_node_degree - 10.0).abs() < 0.5);
        // uniform: max degree stays within a small factor of the mean
        assert!(stats.max_node_degree < 40, "{}", stats.max_node_degree);
    }

    #[test]
    fn degenerate_cases() {
        let h = uniform_random(0, 0, 0, 1);
        assert_eq!(h.num_hyperedges(), 0);
        let h = uniform_random(5, 3, 0, 1);
        assert_eq!(h.num_incidences(), 0);
        let h = uniform_random(5, 1, 5, 1);
        assert_eq!(h.edge_members(0), &[0, 1, 2, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "exceeds hypernode count")]
    fn oversize_edge_rejected() {
        uniform_random(3, 1, 4, 1);
    }
}
