//! Scaled twins of the paper's Table I datasets.
//!
//! Each [`DatasetProfile`] records the real dataset's published statistics
//! (the Table I row) and a generator recipe whose output matches the
//! row's size ratios, degree averages, and skew at a configurable
//! down-scale. `generate(scale, …)` with `scale = 1000` yields inputs
//! roughly 1000× smaller than the originals — big enough to exercise the
//! parallel kernels' load-balancing behaviour, small enough for a laptop
//! benchmark run.

use crate::powerlaw::{powerlaw_hypergraph, PowerlawParams};
use crate::uniform::uniform_random;
use nwhy_core::Hypergraph;

/// One row of the paper's Table I (real dataset statistics).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TableOneRow {
    /// Dataset type as printed in Table I ("Social", "Web", …).
    pub kind: &'static str,
    /// |V| — hypernodes in the real dataset.
    pub num_nodes: usize,
    /// |E| — hyperedges in the real dataset.
    pub num_edges: usize,
    /// d̄_v — average hypernode degree.
    pub avg_node_degree: f64,
    /// d̄_e — average hyperedge size.
    pub avg_edge_degree: f64,
    /// Δ_v — maximum hypernode degree.
    pub max_node_degree: usize,
    /// Δ_e — maximum hyperedge size.
    pub max_edge_degree: usize,
}

/// Generator recipe for a profile.
#[derive(Debug, Clone, Copy)]
pub enum GenSpec {
    /// Uniform random hyperedges of a fixed size (Rand1).
    Uniform {
        /// Hypernodes per hyperedge.
        edge_size: usize,
    },
    /// Power-law configuration model with per-side tail exponents.
    Powerlaw {
        /// Hypernode-degree tail exponent.
        node_exponent: f64,
        /// Hyperedge-size tail exponent.
        edge_exponent: f64,
    },
}

/// A named Table I twin: paper statistics + generator recipe.
#[derive(Debug, Clone, Copy)]
pub struct DatasetProfile {
    /// Dataset name as printed in the paper.
    pub name: &'static str,
    /// The real dataset's Table I row.
    pub row: TableOneRow,
    /// How the twin is generated.
    pub spec: GenSpec,
}

impl DatasetProfile {
    /// Generates the twin at `1/scale` of the real size (`scale ≥ 1`),
    /// deterministically from `seed`.
    pub fn generate(&self, scale: usize, seed: u64) -> Hypergraph {
        assert!(scale >= 1, "scale must be at least 1");
        let nodes = (self.row.num_nodes / scale).max(16);
        let edges = (self.row.num_edges / scale).max(16);
        match self.spec {
            GenSpec::Uniform { edge_size } => {
                uniform_random(nodes, edges, edge_size.min(nodes), seed)
            }
            GenSpec::Powerlaw {
                node_exponent,
                edge_exponent,
            } => powerlaw_hypergraph(PowerlawParams {
                num_nodes: nodes,
                num_edges: edges,
                avg_node_degree: self.row.avg_node_degree,
                node_exponent,
                edge_exponent,
                seed,
            }),
        }
    }
}

/// The six Table I datasets and their twin recipes. Exponents are chosen
/// so the Δ/d̄ skew ratio of each side tracks the paper's row (heavier
/// tails where the paper's max/avg ratio is larger).
pub const TABLE1: [DatasetProfile; 6] = [
    DatasetProfile {
        name: "com-Orkut",
        row: TableOneRow {
            kind: "Social",
            num_nodes: 2_300_000,
            num_edges: 15_300_000,
            avg_node_degree: 46.0,
            avg_edge_degree: 7.0,
            max_node_degree: 3_000,
            max_edge_degree: 9_100,
        },
        spec: GenSpec::Powerlaw {
            node_exponent: 2.5,
            edge_exponent: 2.05,
        },
    },
    DatasetProfile {
        name: "Friendster",
        row: TableOneRow {
            kind: "Social",
            num_nodes: 7_900_000,
            num_edges: 1_600_000,
            avg_node_degree: 3.0,
            avg_edge_degree: 14.0,
            max_node_degree: 1_700,
            max_edge_degree: 9_300,
        },
        spec: GenSpec::Powerlaw {
            node_exponent: 2.1,
            edge_exponent: 2.1,
        },
    },
    DatasetProfile {
        name: "Orkut-group",
        row: TableOneRow {
            kind: "Social",
            num_nodes: 2_800_000,
            num_edges: 8_700_000,
            avg_node_degree: 118.0,
            avg_edge_degree: 37.0,
            max_node_degree: 40_000,
            max_edge_degree: 318_000,
        },
        spec: GenSpec::Powerlaw {
            node_exponent: 2.3,
            edge_exponent: 2.05,
        },
    },
    DatasetProfile {
        name: "LiveJournal",
        row: TableOneRow {
            kind: "Social",
            num_nodes: 3_200_000,
            num_edges: 7_500_000,
            avg_node_degree: 35.0,
            avg_edge_degree: 15.0,
            max_node_degree: 300,
            max_edge_degree: 1_100_000,
        },
        spec: GenSpec::Powerlaw {
            node_exponent: 3.5,
            edge_exponent: 1.9,
        },
    },
    DatasetProfile {
        name: "Web",
        row: TableOneRow {
            kind: "Web",
            num_nodes: 27_700_000,
            num_edges: 12_800_000,
            avg_node_degree: 5.0,
            avg_edge_degree: 11.0,
            max_node_degree: 1_100_000,
            max_edge_degree: 11_600_000,
        },
        spec: GenSpec::Powerlaw {
            node_exponent: 1.9,
            edge_exponent: 1.9,
        },
    },
    DatasetProfile {
        name: "Rand1",
        row: TableOneRow {
            kind: "Synthetic",
            num_nodes: 100_000_000,
            num_edges: 100_000_000,
            avg_node_degree: 10.0,
            avg_edge_degree: 10.0,
            max_node_degree: 34,
            max_edge_degree: 10,
        },
        spec: GenSpec::Uniform { edge_size: 10 },
    },
];

/// Looks up a profile by (case-insensitive) name.
pub fn profile_by_name(name: &str) -> Option<&'static DatasetProfile> {
    TABLE1.iter().find(|p| p.name.eq_ignore_ascii_case(name))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_profiles_match_paper_names() {
        let names: Vec<&str> = TABLE1.iter().map(|p| p.name).collect();
        assert_eq!(
            names,
            vec![
                "com-Orkut",
                "Friendster",
                "Orkut-group",
                "LiveJournal",
                "Web",
                "Rand1"
            ]
        );
    }

    #[test]
    fn rows_are_internally_consistent() {
        // |V|·d̄_v ≈ |E|·d̄_e (both count incidences)
        for p in &TABLE1 {
            let by_nodes = p.row.num_nodes as f64 * p.row.avg_node_degree;
            let by_edges = p.row.num_edges as f64 * p.row.avg_edge_degree;
            let ratio = by_nodes / by_edges;
            assert!(
                (0.5..2.0).contains(&ratio),
                "{}: incidence counts disagree ({by_nodes:.0} vs {by_edges:.0})",
                p.name
            );
        }
    }

    #[test]
    fn generated_twins_have_right_shape() {
        for p in &TABLE1 {
            let h = p.generate(10_000, 1);
            assert_eq!(
                h.num_hypernodes(),
                (p.row.num_nodes / 10_000).max(16),
                "{}",
                p.name
            );
            assert_eq!(
                h.num_hyperedges(),
                (p.row.num_edges / 10_000).max(16),
                "{}",
                p.name
            );
            assert!(h.num_incidences() > 0, "{}", p.name);
        }
    }

    #[test]
    fn rand1_twin_is_uniform() {
        let p = profile_by_name("rand1").unwrap();
        let h = p.generate(10_000, 2);
        let stats = h.stats();
        assert_eq!(stats.max_edge_degree, 10);
        assert!((stats.avg_edge_degree - 10.0).abs() < 1e-9);
    }

    #[test]
    fn social_twins_are_skewed() {
        let p = profile_by_name("com-Orkut").unwrap();
        let h = p.generate(1000, 3);
        let stats = h.stats();
        assert!(
            stats.max_edge_degree as f64 > 5.0 * stats.avg_edge_degree,
            "com-Orkut twin not skewed: max {} avg {}",
            stats.max_edge_degree,
            stats.avg_edge_degree
        );
    }

    #[test]
    fn lookup_is_case_insensitive() {
        assert!(profile_by_name("WEB").is_some());
        assert!(profile_by_name("nope").is_none());
    }

    #[test]
    fn generation_is_deterministic() {
        let p = profile_by_name("Friendster").unwrap();
        assert_eq!(p.generate(5000, 7), p.generate(5000, 7));
    }
}
