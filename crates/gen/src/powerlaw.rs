//! Power-law bipartite configuration model.
//!
//! The real Table I hypergraphs (com-Orkut, Friendster, Orkut-group,
//! LiveJournal, Web) all have "skewed hyperedge degree distributions" —
//! the property that motivates NWHy's cyclic partitioning and
//! relabel-by-degree machinery. This generator reproduces that skew with
//! a configuration model: Pareto-tailed degree targets on both sides are
//! scaled to a common incidence total, expanded into stub lists, shuffled,
//! and paired.

use crate::rng::Rng;
use nwhy_core::{BiEdgeList, Hypergraph, Id};

/// Tuning parameters for [`powerlaw_hypergraph`].
#[derive(Debug, Clone, Copy)]
pub struct PowerlawParams {
    /// Number of hypernodes.
    pub num_nodes: usize,
    /// Number of hyperedges.
    pub num_edges: usize,
    /// Target mean hypernode degree (`d̄_v`).
    pub avg_node_degree: f64,
    /// Pareto exponent for hypernode degrees (smaller ⇒ heavier tail);
    /// must be > 1.
    pub node_exponent: f64,
    /// Pareto exponent for hyperedge sizes; must be > 1.
    pub edge_exponent: f64,
    /// PRNG seed.
    pub seed: u64,
}

/// Draws a degree sequence with the given total and tail exponent:
/// Pareto weights normalized to `total` and rounded, each at least 1.
fn degree_sequence(n: usize, total: usize, exponent: f64, rng: &mut Rng) -> Vec<usize> {
    if n == 0 {
        return Vec::new();
    }
    let weights: Vec<f64> = (0..n).map(|_| rng.pareto(exponent)).collect();
    let sum: f64 = weights.iter().sum();
    let scale = total as f64 / sum;
    weights
        .into_iter()
        .map(|w| ((w * scale).round() as usize).max(1))
        .collect()
}

/// One configuration-model pass at a given incidence total.
fn one_pass(p: &PowerlawParams, total: usize, rng: &mut Rng) -> BiEdgeList {
    let node_deg = degree_sequence(p.num_nodes, total, p.node_exponent, rng);
    let edge_deg = degree_sequence(p.num_edges, total, p.edge_exponent, rng);

    // Stub lists: node i appears deg(i) times; likewise for edges.
    let mut node_stubs: Vec<Id> = node_deg
        .iter()
        .enumerate()
        .flat_map(|(v, &d)| std::iter::repeat_n(v as Id, d))
        .collect();
    let mut edge_stubs: Vec<Id> = edge_deg
        .iter()
        .enumerate()
        .flat_map(|(e, &d)| std::iter::repeat_n(e as Id, d))
        .collect();
    rng.shuffle(&mut node_stubs);
    rng.shuffle(&mut edge_stubs);

    let k = node_stubs.len().min(edge_stubs.len());
    let incidences: Vec<(Id, Id)> = edge_stubs[..k]
        .iter()
        .zip(&node_stubs[..k])
        .map(|(&e, &v)| (e, v))
        .collect();
    let mut bel = BiEdgeList::from_incidences(p.num_edges, p.num_nodes, incidences);
    bel.sort_dedup(); // multi-incidences collapse, as in the real datasets
    bel
}

/// Generates a skewed bipartite hypergraph. Because hub–hub stub pairings
/// collapse in deduplication, a single pass realizes fewer incidences
/// than requested; the generator compensates by re-running with an
/// inflated total until the realized count is within 10% of target (at
/// most three attempts, deterministic for a given seed).
pub fn powerlaw_hypergraph(p: PowerlawParams) -> Hypergraph {
    assert!(
        p.node_exponent > 1.0 && p.edge_exponent > 1.0,
        "exponents must be > 1"
    );
    let mut rng = Rng::new(p.seed);
    let target = (p.num_nodes as f64 * p.avg_node_degree).round() as usize;

    let mut factor = 1.0f64;
    let mut best = one_pass(&p, target, &mut rng);
    for _ in 0..2 {
        let realized = best.num_incidences();
        if target == 0 || realized as f64 >= 0.9 * target as f64 {
            break;
        }
        factor *= target as f64 / realized.max(1) as f64;
        // cap the inflation: extreme tails (exponent near 1) dedup hard
        factor = factor.min(8.0);
        best = one_pass(&p, (target as f64 * factor).round() as usize, &mut rng);
    }
    Hypergraph::from_biedgelist(&best)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> PowerlawParams {
        PowerlawParams {
            num_nodes: 2000,
            num_edges: 1500,
            avg_node_degree: 8.0,
            node_exponent: 2.3,
            edge_exponent: 2.3,
            seed: 11,
        }
    }

    #[test]
    fn shape_matches_request() {
        let h = powerlaw_hypergraph(params());
        assert_eq!(h.num_hypernodes(), 2000);
        assert_eq!(h.num_hyperedges(), 1500);
    }

    #[test]
    fn average_degree_near_target() {
        let h = powerlaw_hypergraph(params());
        let stats = h.stats();
        // dedup + trimming erode a bit; must stay in the right ballpark
        assert!(
            (stats.avg_node_degree - 8.0).abs() < 2.0,
            "avg node degree {}",
            stats.avg_node_degree
        );
    }

    #[test]
    fn distribution_is_skewed() {
        let h = powerlaw_hypergraph(params());
        let stats = h.stats();
        // hub edges dwarf the mean — the Table I signature
        assert!(
            stats.max_edge_degree as f64 > 8.0 * stats.avg_edge_degree,
            "max {} vs avg {}",
            stats.max_edge_degree,
            stats.avg_edge_degree
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let a = powerlaw_hypergraph(params());
        let b = powerlaw_hypergraph(params());
        assert_eq!(a, b);
        let c = powerlaw_hypergraph(PowerlawParams {
            seed: 12,
            ..params()
        });
        assert_ne!(a, c);
    }

    #[test]
    fn no_duplicate_incidences() {
        let h = powerlaw_hypergraph(params());
        for e in 0..h.num_hyperedges() as u32 {
            let m = h.edge_members(e);
            assert!(m.windows(2).all(|w| w[0] < w[1]), "edge {e} has duplicates");
        }
    }

    #[test]
    fn tiny_inputs() {
        let h = powerlaw_hypergraph(PowerlawParams {
            num_nodes: 1,
            num_edges: 1,
            avg_node_degree: 1.0,
            node_exponent: 2.0,
            edge_exponent: 2.0,
            seed: 1,
        });
        assert_eq!(h.num_hyperedges(), 1);
        assert_eq!(h.edge_members(0), &[0]);
    }

    #[test]
    #[should_panic(expected = "exponents")]
    fn bad_exponent_rejected() {
        powerlaw_hypergraph(PowerlawParams {
            node_exponent: 1.0,
            ..params()
        });
    }
}
