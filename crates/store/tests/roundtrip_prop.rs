//! Property tests for the NWHYPAK1 codec: pack → open → decode is the
//! identity on arbitrary hypergraphs, through both the owned-buffer and
//! (on unix) the mmap backend.

use nwhy_core::{ids, BiEdgeList, Hypergraph, Id};
use nwhy_store::{pack_hypergraph, Backend, CompressedHypergraph};
use proptest::prelude::*;

/// Arbitrary membership lists: includes empty hypergraphs, empty rows
/// (hyperedges with no members), and singleton edges.
fn arb_memberships() -> impl Strategy<Value = Vec<Vec<Id>>> {
    proptest::collection::vec(proptest::collection::btree_set(0u32..40, 0..8), 0..14)
        .prop_map(|sets| sets.into_iter().map(|s| s.into_iter().collect()).collect())
}

/// Arbitrary weighted incidence lists (duplicates allowed — the format
/// must preserve duplicate incidences via zero gaps). Weights come from
/// scaled integers: the vendored proptest has no float strategies, and
/// exact-representable values keep the equality assertions meaningful.
fn arb_weighted() -> impl Strategy<Value = (Vec<(Id, Id)>, Vec<f64>)> {
    proptest::collection::vec(((0u32..10), (0u32..20), 0u32..2000), 0..30).prop_map(|triples| {
        triples
            .into_iter()
            .map(|(e, v, w)| ((e, v), (f64::from(w) - 1000.0) / 8.0))
            .unzip()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn prop_pack_open_identity(ms in arb_memberships()) {
        let h = Hypergraph::from_memberships(&ms);
        let c = CompressedHypergraph::from_bytes(pack_hypergraph(&h)).unwrap();
        prop_assert_eq!(c.num_hyperedges(), h.num_hyperedges());
        prop_assert_eq!(c.num_hypernodes(), h.num_hypernodes());
        prop_assert_eq!(c.num_incidences(), h.num_incidences());
        c.check_integrity().unwrap();
        prop_assert_eq!(&c.to_hypergraph().unwrap(), &h);
        // row-level agreement, not just whole-structure equality
        for e in 0..ids::from_usize(h.num_hyperedges()) {
            prop_assert_eq!(&c.edge_row(e).unwrap()[..], h.edge_members(e));
        }
        for v in 0..ids::from_usize(h.num_hypernodes()) {
            prop_assert_eq!(&c.node_row(v).unwrap()[..], h.node_memberships(v));
        }
    }

    #[test]
    fn prop_pack_open_identity_weighted(input in arb_weighted()) {
        let (incidences, weights) = input;
        let bel = BiEdgeList::from_weighted_incidences(10, 20, incidences, weights);
        let h = Hypergraph::from_biedgelist(&bel);
        let c = CompressedHypergraph::from_bytes(pack_hypergraph(&h)).unwrap();
        prop_assert_eq!(c.is_weighted(), h.is_weighted());
        prop_assert_eq!(&c.to_hypergraph().unwrap(), &h);
    }

    #[test]
    fn prop_file_roundtrip_through_backends(ms in arb_memberships()) {
        let h = Hypergraph::from_memberships(&ms);
        let bytes = pack_hypergraph(&h);
        let mut path = std::env::temp_dir();
        path.push(format!(
            "nwhy-store-prop-{}-{}.nwhypak",
            std::process::id(),
            h.num_incidences()
        ));
        std::fs::write(&path, &bytes).unwrap();
        let owned = CompressedHypergraph::open(&path, Backend::Owned).unwrap();
        prop_assert!(!owned.is_mapped());
        prop_assert_eq!(&owned.to_hypergraph().unwrap(), &h);
        #[cfg(all(unix, feature = "mmap"))]
        {
            let mapped = CompressedHypergraph::open(&path, Backend::Mmap).unwrap();
            prop_assert!(mapped.is_mapped());
            prop_assert_eq!(&mapped.to_hypergraph().unwrap(), &h);
        }
        std::fs::remove_file(&path).ok();
    }
}
