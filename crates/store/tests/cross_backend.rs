//! Cross-backend agreement: every s-line construction algorithm, BFS,
//! and CC must produce identical results on the compressed on-disk
//! representation and on the pointer-based in-memory bi-adjacency.
//!
//! This is the acceptance gate for the zero-copy storage subsystem: the
//! kernels are generic over `HyperAdjacency`, so the only way results can
//! diverge is a codec bug — which is exactly what this test exists to
//! catch.

use nwhy_core::algorithms::{hyper_bfs_generic, hyper_cc_generic};
use nwhy_core::{Algorithm, Hypergraph, OverlapPath, OverlapPolicy, SLineBuilder};
use nwhy_gen::powerlaw::PowerlawParams;
use nwhy_gen::{powerlaw_hypergraph, uniform_random};
use nwhy_store::{pack_hypergraph, Backend, CompressedHypergraph};

fn fixtures() -> Vec<(&'static str, Hypergraph)> {
    vec![
        (
            "uniform",
            uniform_random(
                /* nodes */ 60, /* edges */ 40, /* size */ 4, 0xC0FFEE,
            ),
        ),
        (
            "powerlaw",
            powerlaw_hypergraph(PowerlawParams {
                num_nodes: 80,
                num_edges: 50,
                avg_node_degree: 3.0,
                node_exponent: 2.5,
                edge_exponent: 2.5,
                seed: 42,
            }),
        ),
        (
            "degenerate",
            Hypergraph::from_memberships(&[vec![], vec![7], vec![0, 1, 2], vec![1, 2], vec![7]]),
        ),
    ]
}

fn compress(h: &Hypergraph) -> CompressedHypergraph {
    CompressedHypergraph::from_bytes(pack_hypergraph(h)).expect("pack image must open")
}

#[test]
fn all_algorithms_agree_across_backends() {
    for (name, h) in fixtures() {
        let c = compress(&h);
        for algorithm in Algorithm::ALL {
            for s in 1..=3 {
                let on_memory = SLineBuilder::new(&h).algorithm(algorithm).s(s).edges();
                let on_packed = SLineBuilder::new(&c).algorithm(algorithm).s(s).edges();
                assert_eq!(
                    on_memory,
                    on_packed,
                    "{name}: {} disagrees at s={s}",
                    algorithm.name()
                );
            }
        }
    }
}

/// The adaptive overlap engine's per-pair path choice depends only on
/// row *lengths*, never on how the rows are stored — so every forced
/// path and the planner's `auto` must agree with the naive reference on
/// the packed image and on a memory-mapped file, at every s.
#[test]
fn overlap_paths_and_planner_agree_across_backends() {
    for (name, h) in fixtures() {
        let packed = compress(&h);
        let bytes = pack_hypergraph(&h);
        let path = std::env::temp_dir().join(format!(
            "nwhy-cross-backend-{}-{name}.nwhypak",
            std::process::id()
        ));
        std::fs::write(&path, &bytes).expect("write pack image");
        let mapped = CompressedHypergraph::open(&path, Backend::Auto).expect("open pack image");
        for s in 1..=4 {
            let reference = SLineBuilder::new(&h)
                .algorithm(Algorithm::Naive)
                .s(s)
                .edges();
            for policy in [
                OverlapPolicy::Adaptive,
                OverlapPolicy::Force(OverlapPath::Merge),
                OverlapPolicy::Force(OverlapPath::Gallop),
                OverlapPolicy::Force(OverlapPath::Bitset),
            ] {
                for (backend, c) in [("packed", &packed), ("mapped", &mapped)] {
                    let got = SLineBuilder::new(c)
                        .algorithm(Algorithm::Intersection)
                        .overlap(policy)
                        .s(s)
                        .edges();
                    assert_eq!(
                        got,
                        reference,
                        "{name}/{backend}: {} disagrees at s={s}",
                        policy.name()
                    );
                }
            }
            for (backend, c) in [("packed", &packed), ("mapped", &mapped)] {
                let auto = SLineBuilder::new(c).auto().s(s).edges();
                assert_eq!(auto, reference, "{name}/{backend}: auto disagrees at s={s}");
            }
        }
        std::fs::remove_file(&path).ok();
    }
}

#[test]
fn weighted_and_ensemble_agree_across_backends() {
    for (name, h) in fixtures() {
        let c = compress(&h);
        for s in 1..=3 {
            assert_eq!(
                SLineBuilder::new(&h).s(s).weighted_edges(),
                SLineBuilder::new(&c).s(s).weighted_edges(),
                "{name}: weighted s={s}"
            );
        }
        assert_eq!(
            SLineBuilder::new(&h).ensemble_edges(&[1, 2, 3]),
            SLineBuilder::new(&c).ensemble_edges(&[1, 2, 3]),
            "{name}: ensemble"
        );
    }
}

#[test]
fn traversals_agree_across_backends() {
    for (name, h) in fixtures() {
        if h.num_hyperedges() == 0 {
            continue;
        }
        let c = compress(&h);
        let bfs_mem = hyper_bfs_generic(&h, 0);
        let bfs_pak = hyper_bfs_generic(&c, 0);
        assert_eq!(
            bfs_mem.edge_levels, bfs_pak.edge_levels,
            "{name}: BFS edge levels"
        );
        assert_eq!(
            bfs_mem.node_levels, bfs_pak.node_levels,
            "{name}: BFS node levels"
        );
        assert_eq!(hyper_cc_generic(&h), hyper_cc_generic(&c), "{name}: CC");
    }
}
