//! [`CompressedHypergraph`] — the `NWHYPAK1` image served through
//! [`HyperAdjacency`], so every s-line kernel, BFS/CC, and s-metric in
//! the workspace runs on the packed form unchanged.
//!
//! The image stays in its [`Storage`] (mmap or owned buffer); neighbor
//! queries decode one gap-coded row into a small owned `Vec<Id>` on
//! demand. Degree queries are cheaper still: they read only the row's
//! length varint. Sequential scans ([`CompressedHypergraph::scan_edges`]
//! and friends) decode the payload front to back with no index seeks,
//! which is the access pattern the construction kernels and traversal
//! benches actually exercise.

use crate::format::{self, Header, FLAG_WEIGHTS, HEADER_LEN, SAMPLE_EVERY};
use crate::storage::{Backend, Storage};
use crate::varint;
use crate::StoreError;
use nwgraph::Csr;
use nwhy_core::validate::{InvariantViolation, Validate};
use nwhy_core::{ids, HyperAdjacency, Hypergraph, Id};
use std::ops::Range;
use std::path::Path;

/// One packed CSR inside the image: section ranges (absolute byte
/// offsets into the storage) plus its shape.
#[derive(Debug, Clone)]
struct PackedCsr {
    rows: usize,
    num_targets: usize,
    index: Range<usize>,
    payload: Range<usize>,
    weights: Option<Range<usize>>,
}

impl PackedCsr {
    /// Byte position (within the payload slice) where row `r` starts:
    /// one sampled-index lookup plus at most `SAMPLE_EVERY - 1` row
    /// skips.
    fn row_pos(&self, bytes: &[u8], r: usize) -> Result<usize, StoreError> {
        debug_assert!(r < self.rows);
        let index = &bytes[self.index.clone()];
        let payload = &bytes[self.payload.clone()];
        let sample = r / SAMPLE_EVERY;
        let off = format::read_u64_checked(index, sample * 8)?;
        let mut pos = usize::try_from(off).map_err(|_| StoreError::CountOverflow {
            what: "sampled row offset",
            value: off,
        })?;
        if pos > payload.len() {
            return Err(StoreError::Corrupt {
                what: "sampled row offset beyond payload",
                offset: sample * 8,
            });
        }
        for _ in 0..(r % SAMPLE_EVERY) {
            let len = varint::decode(payload, &mut pos)?;
            for _ in 0..len {
                varint::skip(payload, &mut pos)?;
            }
        }
        Ok(pos)
    }

    /// Decodes row `r` into `out` (cleared first). `max_len` bounds the
    /// claimed row length (the file's own `nnz`), so a corrupt length
    /// varint cannot trigger an unbounded allocation.
    fn decode_row_into(
        &self,
        bytes: &[u8],
        r: usize,
        max_len: usize,
        out: &mut Vec<Id>,
    ) -> Result<(), StoreError> {
        let mut pos = self.row_pos(bytes, r)?;
        let payload = &bytes[self.payload.clone()];
        decode_one_row(payload, &mut pos, max_len, self.num_targets, out)
    }

    /// Length of row `r` — reads only the length varint.
    fn row_len(&self, bytes: &[u8], r: usize) -> Result<usize, StoreError> {
        let mut pos = self.row_pos(bytes, r)?;
        let payload = &bytes[self.payload.clone()];
        let len = varint::decode(payload, &mut pos)?;
        usize::try_from(len).map_err(|_| StoreError::CountOverflow {
            what: "row length",
            value: len,
        })
    }
}

/// Decodes one `varint(len) + gaps` row at `payload[*pos..]` into `out`,
/// checking the row length against `max_len` and every reconstructed
/// value against `num_targets`.
fn decode_one_row(
    payload: &[u8],
    pos: &mut usize,
    max_len: usize,
    num_targets: usize,
    out: &mut Vec<Id>,
) -> Result<(), StoreError> {
    let len = varint::decode(payload, pos)?;
    let len = usize::try_from(len)
        .ok()
        .filter(|&l| l <= max_len)
        .ok_or(StoreError::Corrupt {
            what: "row length exceeds incidence count",
            offset: *pos,
        })?;
    out.clear();
    out.reserve(len);
    let mut prev: u64 = 0;
    for i in 0..len {
        let gap = varint::decode(payload, pos)?;
        let v = if i == 0 {
            gap
        } else {
            prev.checked_add(gap).ok_or(StoreError::Corrupt {
                what: "gap sum overflow",
                offset: *pos,
            })?
        };
        if v >= num_targets as u64 {
            return Err(StoreError::Corrupt {
                what: "gap sum out of target bounds",
                offset: *pos,
            });
        }
        prev = v;
        // lint: v < num_targets ≤ u32::MAX + 1 checked above
        #[allow(clippy::cast_possible_truncation)]
        out.push(v as Id);
    }
    Ok(())
}

/// Per-section byte sizes of an opened image — the raw material of the
/// `nwhy-cli info` subcommand and the storage benches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StorageStats {
    /// Total image size in bytes (header + all sections).
    pub total_bytes: usize,
    /// Bytes of the two sampled-offset index sections.
    pub index_bytes: usize,
    /// Bytes of the two gap-coded payload sections.
    pub payload_bytes: usize,
    /// Bytes of the two weights sections (0 when unweighted).
    pub weights_bytes: usize,
    /// Number of incidences.
    pub nnz: usize,
}

impl StorageStats {
    /// Compressed bytes per incidence, counting both CSR directions
    /// (the `NWHYBIN1` yardstick stores 8 bytes per incidence once, so
    /// compare against `8.0`).
    pub fn bytes_per_incidence(&self) -> f64 {
        if self.nnz == 0 {
            return 0.0;
        }
        self.total_bytes as f64 / self.nnz as f64
    }
}

/// A hypergraph served from a packed `NWHYPAK1` image without
/// decompression: both bi-adjacency directions decode per row, on
/// demand, straight out of the (possibly memory-mapped) byte image.
#[derive(Debug)]
pub struct CompressedHypergraph {
    bytes: Storage,
    n_e: usize,
    n_v: usize,
    nnz: usize,
    edges: PackedCsr,
    nodes: PackedCsr,
}

impl CompressedHypergraph {
    /// Opens a `NWHYPAK1` file with the chosen [`Backend`].
    pub fn open(path: &Path, backend: Backend) -> Result<Self, StoreError> {
        Self::from_storage(Storage::open(path, backend)?)
    }

    /// Interprets an in-memory image (e.g. straight from
    /// [`crate::pack_hypergraph`]) as a compressed hypergraph.
    pub fn from_bytes(bytes: Vec<u8>) -> Result<Self, StoreError> {
        Self::from_storage(Storage::Owned(bytes))
    }

    /// Parses and structurally checks the header against the image
    /// size; payload bytes are validated lazily (or eagerly via
    /// [`Validate`]).
    // lint: obs: nwhy-store deliberately has no nwhy-obs dependency (it is the
    // zero-copy leaf crate under the unsafe-island lint wall); callers
    // instrument opens via the `io.open_packed` span in nwhy-io
    pub fn from_storage(bytes: Storage) -> Result<Self, StoreError> {
        let header = Header::parse(&bytes)?;
        let n_e = count(header.n_e, "n_e")?;
        let n_v = count(header.n_v, "n_v")?;
        let nnz = count(header.nnz, "nnz")?;

        let mut starts = [0usize; 7];
        starts[0] = HEADER_LEN;
        for i in 0..6 {
            let len = count(header.section_lens[i], "section length")?;
            starts[i + 1] = starts[i].checked_add(len).ok_or(StoreError::Corrupt {
                what: "section lengths overflow",
                offset: 40 + 8 * i,
            })?;
        }
        if starts[6] != bytes.len() {
            return Err(if starts[6] > bytes.len() {
                StoreError::Truncated {
                    what: "section payload",
                    offset: bytes.len(),
                }
            } else {
                StoreError::Corrupt {
                    what: "trailing bytes after last section",
                    offset: starts[6],
                }
            });
        }

        let weighted = header.flags & FLAG_WEIGHTS != 0;
        let expect_weights = if weighted { nnz * 8 } else { 0 };
        for i in [4usize, 5] {
            if starts[i + 1] - starts[i] != expect_weights {
                return Err(StoreError::Corrupt {
                    what: if weighted {
                        "weights section length != 8 × nnz"
                    } else {
                        "weights section present without flag"
                    },
                    offset: starts[i],
                });
            }
        }

        let edges = packed_csr(n_e, n_v, &starts, 0, weighted.then_some(4))?;
        let nodes = packed_csr(n_v, n_e, &starts, 2, weighted.then_some(5))?;

        Ok(CompressedHypergraph {
            bytes,
            n_e,
            n_v,
            nnz,
            edges,
            nodes,
        })
    }

    /// Number of hyperedges.
    pub fn num_hyperedges(&self) -> usize {
        self.n_e
    }

    /// Number of hypernodes.
    pub fn num_hypernodes(&self) -> usize {
        self.n_v
    }

    /// Number of incidences.
    pub fn num_incidences(&self) -> usize {
        self.nnz
    }

    /// `true` when the image carries per-incidence weights.
    pub fn is_weighted(&self) -> bool {
        self.edges.weights.is_some()
    }

    /// `true` when served by the mmap backend.
    pub fn is_mapped(&self) -> bool {
        self.bytes.is_mapped()
    }

    /// Section-level size accounting.
    pub fn stats(&self) -> StorageStats {
        StorageStats {
            total_bytes: self.bytes.len(),
            index_bytes: self.edges.index.len() + self.nodes.index.len(),
            payload_bytes: self.edges.payload.len() + self.nodes.payload.len(),
            weights_bytes: self.edges.weights.as_ref().map_or(0, Range::len)
                + self.nodes.weights.as_ref().map_or(0, Range::len),
            nnz: self.nnz,
        }
    }

    /// Decodes the member hypernodes of hyperedge `e`.
    ///
    /// # Errors
    /// Reports payload corruption; a file that passed [`Validate`] never
    /// errors here.
    pub fn edge_row(&self, e: Id) -> Result<Vec<Id>, StoreError> {
        let mut out = Vec::new();
        self.edges
            .decode_row_into(&self.bytes, ids::to_usize(e), self.nnz, &mut out)?;
        Ok(out)
    }

    /// Decodes the incident hyperedges of hypernode `v`.
    ///
    /// # Errors
    /// Reports payload corruption, as [`CompressedHypergraph::edge_row`].
    pub fn node_row(&self, v: Id) -> Result<Vec<Id>, StoreError> {
        let mut out = Vec::new();
        self.nodes
            .decode_row_into(&self.bytes, ids::to_usize(v), self.nnz, &mut out)?;
        Ok(out)
    }

    /// Size of hyperedge `e` — reads only the length varint.
    ///
    /// # Errors
    /// Reports payload corruption.
    pub fn edge_row_len(&self, e: Id) -> Result<usize, StoreError> {
        self.edges.row_len(&self.bytes, ids::to_usize(e))
    }

    /// Degree of hypernode `v` — reads only the length varint.
    ///
    /// # Errors
    /// Reports payload corruption.
    pub fn node_row_len(&self, v: Id) -> Result<usize, StoreError> {
        self.nodes.row_len(&self.bytes, ids::to_usize(v))
    }

    /// Streams every hyperedge row front to back (no index seeks),
    /// reusing one decode buffer. The visitor gets `(hyperedge, members)`.
    ///
    /// # Errors
    /// Reports payload corruption at the first bad row.
    pub fn scan_edges(&self, f: impl FnMut(Id, &[Id])) -> Result<(), StoreError> {
        scan(&self.edges, &self.bytes, self.nnz, f)
    }

    /// Streams every hypernode row front to back, as
    /// [`CompressedHypergraph::scan_edges`].
    ///
    /// # Errors
    /// Reports payload corruption at the first bad row.
    pub fn scan_nodes(&self, f: impl FnMut(Id, &[Id])) -> Result<(), StoreError> {
        scan(&self.nodes, &self.bytes, self.nnz, f)
    }

    /// Fully decompresses back into an in-memory [`Hypergraph`]
    /// (including weights when present) — the exact inverse of
    /// [`crate::pack_hypergraph`].
    ///
    /// # Errors
    /// Reports payload corruption.
    pub fn to_hypergraph(&self) -> Result<Hypergraph, StoreError> {
        let edges = self.unpack_csr(&self.edges)?;
        let nodes = self.unpack_csr(&self.nodes)?;
        Ok(Hypergraph::from_raw_parts(edges, nodes))
    }

    /// Decodes one packed CSR into a materialized [`Csr`].
    fn unpack_csr(&self, packed: &PackedCsr) -> Result<Csr, StoreError> {
        let mut offsets = Vec::with_capacity(packed.rows + 1);
        offsets.push(0usize);
        let mut targets: Vec<Id> = Vec::with_capacity(self.nnz);
        let payload = &self.bytes[packed.payload.clone()];
        let mut pos = 0usize;
        let mut row = Vec::new();
        for _ in 0..packed.rows {
            decode_one_row(payload, &mut pos, self.nnz, packed.num_targets, &mut row)?;
            targets.extend_from_slice(&row);
            offsets.push(targets.len());
        }
        if pos != payload.len() {
            return Err(StoreError::Corrupt {
                what: "trailing bytes after last row",
                offset: pos,
            });
        }
        let weights = match &packed.weights {
            None => None,
            Some(range) => {
                let ws = &self.bytes[range.clone()];
                let mut out = Vec::with_capacity(ws.len() / 8);
                for chunk in ws.chunks_exact(8) {
                    let arr: [u8; 8] = chunk.try_into().expect("8-byte chunk");
                    out.push(f64::from_le_bytes(arr));
                }
                Some(out)
            }
        };
        Ok(Csr::from_raw_parts(
            packed.num_targets,
            offsets,
            targets,
            weights,
        ))
    }

    /// Full integrity walk in storage-error terms: decodes every row of
    /// both CSRs, re-derives the sampled index, and cross-checks the
    /// incidence totals. The [`Validate`] impl builds on this and adds
    /// the structural hypergraph invariants (mutual transposes, sorted
    /// rows, typed-ID round trip).
    // lint: obs: nwhy-store has no nwhy-obs dependency; the CLI `verify`
    // path wraps this walk in its own span
    pub fn check_integrity(&self) -> Result<(), StoreError> {
        for packed in [&self.edges, &self.nodes] {
            let payload = &self.bytes[packed.payload.clone()];
            let index = &self.bytes[packed.index.clone()];
            let mut pos = 0usize;
            let mut total = 0usize;
            let mut row = Vec::new();
            for r in 0..packed.rows {
                if r % SAMPLE_EVERY == 0 {
                    let stored = format::read_u64_checked(index, (r / SAMPLE_EVERY) * 8)?;
                    if stored != pos as u64 {
                        return Err(StoreError::Corrupt {
                            what: "sampled index disagrees with payload walk",
                            offset: (r / SAMPLE_EVERY) * 8,
                        });
                    }
                }
                decode_one_row(payload, &mut pos, self.nnz, packed.num_targets, &mut row)?;
                total += row.len();
            }
            if pos != payload.len() {
                return Err(StoreError::Corrupt {
                    what: "trailing bytes after last row",
                    offset: pos,
                });
            }
            if total != self.nnz {
                return Err(StoreError::Corrupt {
                    what: "row lengths do not sum to nnz",
                    offset: pos,
                });
            }
        }
        Ok(())
    }
}

/// Shared sequential-scan driver for the two packed CSRs.
fn scan(
    packed: &PackedCsr,
    bytes: &[u8],
    nnz: usize,
    mut f: impl FnMut(Id, &[Id]),
) -> Result<(), StoreError> {
    let payload = &bytes[packed.payload.clone()];
    let mut pos = 0usize;
    let mut row = Vec::new();
    for r in 0..packed.rows {
        decode_one_row(payload, &mut pos, nnz, packed.num_targets, &mut row)?;
        f(ids::from_usize(r), &row);
    }
    Ok(())
}

/// Converts a 64-bit header count to `usize`.
fn count(value: u64, what: &'static str) -> Result<usize, StoreError> {
    usize::try_from(value).map_err(|_| StoreError::CountOverflow { what, value })
}

/// Assembles one [`PackedCsr`] from the section-start table, checking
/// the index section holds exactly `ceil(rows / SAMPLE_EVERY)` u64s.
fn packed_csr(
    rows: usize,
    num_targets: usize,
    starts: &[usize; 7],
    first_section: usize,
    weights_section: Option<usize>,
) -> Result<PackedCsr, StoreError> {
    let index = starts[first_section]..starts[first_section + 1];
    let payload = starts[first_section + 1]..starts[first_section + 2];
    let expected_samples = rows.div_ceil(SAMPLE_EVERY);
    if index.len() != expected_samples * 8 {
        return Err(StoreError::Corrupt {
            what: "index section length != 8 × ceil(rows / 64)",
            offset: index.start,
        });
    }
    let weights = weights_section.map(|i| starts[i]..starts[i + 1]);
    Ok(PackedCsr {
        rows,
        num_targets,
        index,
        payload,
        weights,
    })
}

impl HyperAdjacency for CompressedHypergraph {
    type Neighbors<'a>
        = Vec<Id>
    where
        Self: 'a;

    #[inline]
    fn num_hyperedges(&self) -> usize {
        self.n_e
    }
    #[inline]
    fn num_hypernodes(&self) -> usize {
        self.n_v
    }
    /// Decodes the row on every call. Panics on payload corruption —
    /// open-time checks plus [`Validate`] make that unreachable for
    /// well-formed files, and the trait has no error channel by design
    /// (in-memory representations cannot fail either).
    fn edge_neighbors(&self, e: Id) -> Vec<Id> {
        self.edge_row(e).expect("corrupt NWHYPAK1 edge payload")
    }
    /// See [`HyperAdjacency::edge_neighbors`] on this impl.
    fn node_neighbors(&self, v: Id) -> Vec<Id> {
        self.node_row(v).expect("corrupt NWHYPAK1 node payload")
    }
    /// Length-varint fast path: no row decode.
    fn edge_degree(&self, e: Id) -> usize {
        self.edge_row_len(e).expect("corrupt NWHYPAK1 edge payload")
    }
    /// Length-varint fast path: no row decode.
    fn node_degree(&self, v: Id) -> usize {
        self.node_row_len(v).expect("corrupt NWHYPAK1 node payload")
    }
}

impl Validate for CompressedHypergraph {
    /// Packed-form invariants: every varint decodes in bounds, the
    /// sampled index agrees with a front-to-back payload walk, row
    /// lengths sum to `nnz` in both directions, gap sums stay inside
    /// the target ID space, and the decompressed structure satisfies
    /// every [`Hypergraph`] invariant (monotone offsets, sorted rows,
    /// mutual transposes — which is the typed-ID round trip: every raw
    /// word in a node row names a decodable hyperedge row and vice
    /// versa).
    fn validate(&self) -> Result<(), InvariantViolation> {
        if let Err(e) = self.check_integrity() {
            return Err(InvariantViolation::PackedPayloadCorrupt {
                detail: e.to_string(),
            });
        }
        let h = self
            .to_hypergraph()
            .map_err(|e| InvariantViolation::PackedPayloadCorrupt {
                detail: e.to_string(),
            })?;
        h.validate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pack_hypergraph;
    use nwhy_core::fixtures::paper_hypergraph;

    fn packed_fixture() -> CompressedHypergraph {
        CompressedHypergraph::from_bytes(pack_hypergraph(&paper_hypergraph())).unwrap()
    }

    #[test]
    fn shape_matches_source() {
        let h = paper_hypergraph();
        let c = packed_fixture();
        assert_eq!(c.num_hyperedges(), h.num_hyperedges());
        assert_eq!(c.num_hypernodes(), h.num_hypernodes());
        assert_eq!(c.num_incidences(), h.num_incidences());
        assert!(!c.is_weighted());
        assert!(!c.is_mapped());
    }

    #[test]
    fn rows_match_source() {
        let h = paper_hypergraph();
        let c = packed_fixture();
        for e in 0..ids::from_usize(h.num_hyperedges()) {
            assert_eq!(c.edge_row(e).unwrap(), h.edge_members(e), "edge {e}");
            assert_eq!(c.edge_row_len(e).unwrap(), h.edge_degree(e));
        }
        for v in 0..ids::from_usize(h.num_hypernodes()) {
            assert_eq!(c.node_row(v).unwrap(), h.node_memberships(v), "node {v}");
            assert_eq!(c.node_row_len(v).unwrap(), h.node_degree(v));
        }
    }

    #[test]
    fn roundtrips_to_hypergraph() {
        let h = paper_hypergraph();
        let c = packed_fixture();
        assert_eq!(c.to_hypergraph().unwrap(), h);
    }

    #[test]
    fn validates_clean_image() {
        let c = packed_fixture();
        assert_eq!(c.check_integrity().map_err(|e| e.to_string()), Ok(()));
        assert_eq!(c.validate(), Ok(()));
    }

    #[test]
    fn scan_visits_every_row_in_order() {
        let h = paper_hypergraph();
        let c = packed_fixture();
        let mut seen = Vec::new();
        c.scan_edges(|e, row| seen.push((e, row.to_vec()))).unwrap();
        assert_eq!(seen.len(), h.num_hyperedges());
        for (e, row) in &seen {
            assert_eq!(row, h.edge_members(*e));
        }
    }

    #[test]
    fn stats_beat_binary_bytes_per_incidence() {
        let c = packed_fixture();
        let stats = c.stats();
        assert_eq!(stats.nnz, 18);
        assert_eq!(
            stats.total_bytes,
            pack_hypergraph(&paper_hypergraph()).len()
        );
        assert!(stats.payload_bytes > 0);
    }

    #[test]
    fn corrupt_payload_is_reported() {
        let mut img = pack_hypergraph(&paper_hypergraph());
        // Flip a payload byte to an overlong continuation marker.
        let last = img.len() - 1;
        img[last] = 0x80;
        let c = CompressedHypergraph::from_bytes(img).unwrap();
        assert!(c.check_integrity().is_err());
        assert!(matches!(
            c.validate(),
            Err(InvariantViolation::PackedPayloadCorrupt { .. })
        ));
    }

    #[test]
    fn truncated_image_is_rejected_at_open() {
        let img = pack_hypergraph(&paper_hypergraph());
        let cut = img.len() - 3;
        assert!(matches!(
            CompressedHypergraph::from_bytes(img[..cut].to_vec()),
            Err(StoreError::Truncated { .. })
        ));
    }

    #[test]
    fn trailing_garbage_is_rejected_at_open() {
        let mut img = pack_hypergraph(&paper_hypergraph());
        img.extend_from_slice(b"junk");
        assert!(matches!(
            CompressedHypergraph::from_bytes(img),
            Err(StoreError::Corrupt { .. })
        ));
    }

    #[test]
    fn id_boundary_roundtrips_through_codec() {
        // Values at the top of the 32-bit ID space: a full hypergraph
        // with n_v ≈ u32::MAX is not materializable (the dense transpose
        // alone would need tens of gigabytes), so exercise the codec on
        // a raw CSR whose target *space* is u32::MAX while holding only
        // a handful of rows.
        let big = u32::MAX - 1;
        let csr = nwgraph::Csr::from_raw_parts(
            u32::MAX as usize,
            vec![0, 2, 2, 3],
            vec![5, big, big],
            None,
        );
        let (index, payload) = crate::format::pack_csr(&csr);
        assert_eq!(index.len(), 8); // ceil(3/64) = 1 sample
        let mut pos = 0;
        let mut out = Vec::new();
        for r in 0..3u32 {
            decode_one_row(&payload, &mut pos, 3, u32::MAX as usize, &mut out).unwrap();
            assert_eq!(&out[..], csr.neighbors(r), "row {r}");
        }
        assert_eq!(pos, payload.len());
    }

    #[test]
    fn empty_hypergraph_packs_and_opens() {
        let h = Hypergraph::from_memberships(&[]);
        let c = CompressedHypergraph::from_bytes(pack_hypergraph(&h)).unwrap();
        assert_eq!(c.num_hyperedges(), 0);
        assert_eq!(c.num_hypernodes(), 0);
        assert_eq!(c.validate(), Ok(()));
        assert_eq!(c.to_hypergraph().unwrap(), h);
    }
}
