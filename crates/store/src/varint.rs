//! LEB128 varints — the byte-level primitive of the `NWHYPAK1` payload.
//!
//! Neighbor lists are stored as a length varint followed by delta gaps
//! (first value absolute, every later value the difference from its
//! predecessor). Sorted neighbor slices make every gap non-negative, and
//! on the real datasets most gaps fit one byte — this is where the
//! format's compression comes from. Duplicate incidences (a multigraph
//! feature of [`nwgraph::Csr`]) encode as gap `0`.
//!
//! Values are `u64` on the wire even though IDs are `u32`: row lengths
//! and the header arithmetic are 64-bit, and a uniform codec keeps the
//! decoder branch-free on width.

use crate::StoreError;

/// Maximum encoded size of a `u64` varint (ceil(64 / 7) bytes).
pub const MAX_LEN: usize = 10;

/// Appends the LEB128 encoding of `value` to `out`.
#[inline]
// lint: obs: per-byte LEB128 hot loop — a span here would dominate the
// work; the row-level pack/decode callers carry the instrumentation
pub fn encode(mut value: u64, out: &mut Vec<u8>) {
    loop {
        #[allow(clippy::cast_possible_truncation)] // lint: masked to 7 bits first
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Decodes one LEB128 varint from `bytes[*pos..]`, advancing `*pos`.
///
/// Errors on a truncated buffer, on an encoding longer than
/// [`MAX_LEN`] bytes, and on bit 64+ overflow.
#[inline]
// lint: obs: per-byte LEB128 hot loop — a span here would dominate the
// work; the row-level pack/decode callers carry the instrumentation
pub fn decode(bytes: &[u8], pos: &mut usize) -> Result<u64, StoreError> {
    let mut value: u64 = 0;
    let mut shift: u32 = 0;
    loop {
        let &byte = bytes.get(*pos).ok_or(StoreError::Truncated {
            what: "varint payload",
            offset: *pos,
        })?;
        *pos += 1;
        let bits = u64::from(byte & 0x7f);
        if shift >= 64 || (shift == 63 && bits > 1) {
            return Err(StoreError::Corrupt {
                what: "varint wider than 64 bits",
                offset: *pos - 1,
            });
        }
        value |= bits << shift;
        if byte & 0x80 == 0 {
            return Ok(value);
        }
        shift += 7;
    }
}

/// Skips one varint without materializing its value. Same error cases as
/// [`decode`] minus overflow detection (the continuation-length cap still
/// applies, so a corrupt run cannot scan unboundedly).
#[inline]
// lint: obs: per-byte LEB128 hot loop — a span here would dominate the
// work; the row-level pack/decode callers carry the instrumentation
pub fn skip(bytes: &[u8], pos: &mut usize) -> Result<(), StoreError> {
    for _ in 0..MAX_LEN {
        let &byte = bytes.get(*pos).ok_or(StoreError::Truncated {
            what: "varint payload",
            offset: *pos,
        })?;
        *pos += 1;
        if byte & 0x80 == 0 {
            return Ok(());
        }
    }
    Err(StoreError::Corrupt {
        what: "varint continuation run exceeds 10 bytes",
        offset: *pos,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: u64) -> u64 {
        let mut buf = Vec::new();
        encode(v, &mut buf);
        let mut pos = 0;
        let back = decode(&buf, &mut pos).unwrap();
        assert_eq!(pos, buf.len(), "decode must consume the whole encoding");
        back
    }

    #[test]
    fn small_values_fit_one_byte() {
        for v in 0..128u64 {
            let mut buf = Vec::new();
            encode(v, &mut buf);
            assert_eq!(buf.len(), 1);
            assert_eq!(roundtrip(v), v);
        }
    }

    #[test]
    fn boundary_values() {
        for v in [
            127,
            128,
            16_383,
            16_384,
            u64::from(u32::MAX - 1),
            u64::from(u32::MAX),
            u64::MAX - 1,
            u64::MAX,
        ] {
            assert_eq!(roundtrip(v), v);
        }
    }

    #[test]
    fn max_value_is_ten_bytes() {
        let mut buf = Vec::new();
        encode(u64::MAX, &mut buf);
        assert_eq!(buf.len(), MAX_LEN);
    }

    #[test]
    fn truncated_buffer_errors() {
        let mut buf = Vec::new();
        encode(300, &mut buf);
        buf.pop();
        let mut pos = 0;
        assert!(matches!(
            decode(&buf, &mut pos),
            Err(StoreError::Truncated { .. })
        ));
    }

    #[test]
    fn overlong_continuation_errors() {
        let buf = [0x80u8; 11];
        let mut pos = 0;
        assert!(matches!(
            decode(&buf, &mut pos),
            Err(StoreError::Corrupt { .. })
        ));
        let mut pos = 0;
        assert!(matches!(
            skip(&buf, &mut pos),
            Err(StoreError::Corrupt { .. })
        ));
    }

    #[test]
    fn skip_advances_like_decode() {
        let mut buf = Vec::new();
        for v in [0u64, 1, 127, 128, 1 << 20, u64::MAX] {
            encode(v, &mut buf);
        }
        let (mut a, mut b) = (0usize, 0usize);
        for _ in 0..6 {
            decode(&buf, &mut a).unwrap();
            skip(&buf, &mut b).unwrap();
            assert_eq!(a, b);
        }
    }
}
