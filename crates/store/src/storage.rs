//! The [`Storage`] abstraction: where the packed bytes live.
//!
//! Decoding code never knows (or cares) whether the `NWHYPAK1` image is
//! a memory-mapped file or an owned heap buffer — both deref to
//! `&[u8]`. The mmap arm only exists on unix with the `mmap` cargo
//! feature; everything else (including `--no-default-features` builds,
//! which is what proves the fallback is self-sufficient) uses the
//! pure-safe owned path.

use crate::StoreError;
use std::fs::File;
use std::io::Read;
use std::ops::Deref;
use std::path::Path;

/// Backend selection for [`Storage::open`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Backend {
    /// Memory-map when the build/platform supports it, otherwise read
    /// into an owned buffer.
    #[default]
    Auto,
    /// Require the mmap backend; error with
    /// [`StoreError::BackendUnavailable`] when it is compiled out.
    Mmap,
    /// Always read into an owned buffer (the `--no-mmap` path).
    Owned,
}

/// A read-only byte image: either a private memory mapping of the file
/// or the file's contents read into a `Vec`.
#[derive(Debug)]
pub enum Storage {
    /// Owned heap buffer (safe fallback, and the form used for
    /// in-memory packing round trips).
    Owned(Vec<u8>),
    /// Read-only memory mapping (unix + `mmap` feature only).
    #[cfg(all(unix, feature = "mmap"))]
    Mapped(crate::mmap::Mmap),
}

impl Storage {
    /// Opens `path` with the requested backend.
    pub fn open(path: &Path, backend: Backend) -> Result<Storage, StoreError> {
        match backend {
            Backend::Owned => Self::open_owned(path),
            #[cfg(all(unix, feature = "mmap"))]
            Backend::Mmap | Backend::Auto => {
                let file = File::open(path)?;
                Ok(Storage::Mapped(crate::mmap::Mmap::map(&file)?))
            }
            #[cfg(not(all(unix, feature = "mmap")))]
            Backend::Auto => Self::open_owned(path),
            #[cfg(not(all(unix, feature = "mmap")))]
            Backend::Mmap => Err(StoreError::BackendUnavailable { backend: "mmap" }),
        }
    }

    /// The pure-safe path: read the whole file into a `Vec`.
    fn open_owned(path: &Path) -> Result<Storage, StoreError> {
        let mut file = File::open(path)?;
        let mut buf = Vec::new();
        file.read_to_end(&mut buf)?;
        Ok(Storage::Owned(buf))
    }

    /// `true` when this image is served by the mmap backend.
    pub fn is_mapped(&self) -> bool {
        match self {
            Storage::Owned(_) => false,
            #[cfg(all(unix, feature = "mmap"))]
            Storage::Mapped(_) => true,
        }
    }
}

impl Deref for Storage {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        match self {
            Storage::Owned(v) => v,
            #[cfg(all(unix, feature = "mmap"))]
            Storage::Mapped(m) => m.as_slice(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn tmp(name: &str, contents: &[u8]) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("nwhy-store-test-{}-{name}", std::process::id()));
        let mut f = File::create(&p).unwrap();
        f.write_all(contents).unwrap();
        p
    }

    #[test]
    fn owned_backend_reads_file() {
        let p = tmp("owned", b"hello bytes");
        let s = Storage::open(&p, Backend::Owned).unwrap();
        assert_eq!(&*s, b"hello bytes");
        assert!(!s.is_mapped());
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn auto_backend_reads_file() {
        let p = tmp("auto", b"0123456789");
        let s = Storage::open(&p, Backend::Auto).unwrap();
        assert_eq!(&*s, b"0123456789");
        std::fs::remove_file(&p).ok();
    }

    #[cfg(all(unix, feature = "mmap"))]
    #[test]
    fn mmap_backend_maps_file() {
        let p = tmp("mapped", b"mapped contents");
        let s = Storage::open(&p, Backend::Mmap).unwrap();
        assert_eq!(&*s, b"mapped contents");
        assert!(s.is_mapped());
        std::fs::remove_file(&p).ok();
    }

    #[cfg(all(unix, feature = "mmap"))]
    #[test]
    fn mmap_backend_handles_empty_file() {
        let p = tmp("empty", b"");
        let s = Storage::open(&p, Backend::Mmap).unwrap();
        assert_eq!(&*s, b"");
        std::fs::remove_file(&p).ok();
    }

    #[cfg(not(all(unix, feature = "mmap")))]
    #[test]
    fn mmap_backend_reports_unavailable() {
        let p = tmp("unavail", b"x");
        assert!(matches!(
            Storage::open(&p, Backend::Mmap),
            Err(StoreError::BackendUnavailable { .. })
        ));
        std::fs::remove_file(&p).ok();
    }
}
