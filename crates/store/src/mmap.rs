//! Read-only memory mapping — **the only module in the workspace where
//! `unsafe` is permitted**.
//!
//! Everything here is the thinnest possible wrapper over two syscalls,
//! `mmap(2)` and `munmap(2)`, declared directly (std already links
//! libc, so no new dependency is needed). The safety argument, in full
//! (DESIGN.md §8 carries the normative version):
//!
//! - The mapping is `PROT_READ` + `MAP_PRIVATE`: the kernel guarantees
//!   no write-through, and private copy-on-write semantics mean another
//!   process truncating pages cannot inject writes into ours.
//! - The length is taken from `fstat` at map time and never changes;
//!   the `&[u8]` views handed out are always within `[ptr, ptr + len)`.
//! - The pointer is owned uniquely by [`Mmap`]; `Drop` is the only
//!   place it is unmapped, so no view can outlive the mapping (views
//!   borrow the `Mmap`).
//! - Residual risk, documented rather than hidden: if another process
//!   truncates the *file* after mapping, touching a no-longer-backed
//!   page raises `SIGBUS`. That is a process-fatal signal, not memory
//!   unsafety (no torn or dangling reads are possible), and it is the
//!   same contract every mmap consumer on unix accepts. Callers who
//!   cannot accept it use `Backend::Owned`.
//!
//! `cargo xtask lint` (the `unsafe-confinement` rule) verifies no other
//! file in the tree contains `unsafe`, and that every unsafe block here
//! carries a `// SAFETY:` comment.
#![allow(unsafe_code)] // lint: the audited mmap island — see module docs
#![deny(unsafe_op_in_unsafe_fn)]

use std::ffi::c_void;
use std::fs::File;
use std::io;
use std::os::unix::io::AsRawFd;

/// `PROT_READ` on every unix this workspace targets.
const PROT_READ: i32 = 1;
/// `MAP_PRIVATE` on every unix this workspace targets.
const MAP_PRIVATE: i32 = 2;

extern "C" {
    /// `mmap(2)`. `offset` is `off_t`, 64-bit on every supported
    /// target (LP64 unix).
    fn mmap(
        addr: *mut c_void,
        len: usize,
        prot: i32,
        flags: i32,
        fd: i32,
        offset: i64,
    ) -> *mut c_void;
    /// `munmap(2)`.
    fn munmap(addr: *mut c_void, len: usize) -> i32;
}

/// An owned, read-only, private memory mapping of an entire file.
///
/// Zero-length files are represented with a null pointer and no
/// syscall: `mmap` rejects `len == 0`, and an empty slice needs no
/// backing.
#[derive(Debug)]
pub struct Mmap {
    ptr: *mut c_void,
    len: usize,
}

// SAFETY: the mapping is immutable for its whole lifetime (PROT_READ,
// never remapped, never written through) and unmapped exactly once in
// Drop, so sharing or moving it across threads cannot race: concurrent
// access is read-only access to bytes the kernel will not change under
// MAP_PRIVATE.
unsafe impl Send for Mmap {}
// SAFETY: as above — &Mmap only exposes immutable byte reads.
unsafe impl Sync for Mmap {}

impl Mmap {
    /// Maps the whole of `file` read-only.
    pub fn map(file: &File) -> io::Result<Mmap> {
        let len = file.metadata()?.len();
        let len = usize::try_from(len).map_err(|_| {
            io::Error::new(io::ErrorKind::InvalidData, "file exceeds address space")
        })?;
        if len == 0 {
            return Ok(Mmap {
                ptr: std::ptr::null_mut(),
                len: 0,
            });
        }
        // SAFETY: plain FFI call with a live fd (the File borrow
        // outlives the call), a length that is exactly the file's
        // current size, and no requested address. The kernel validates
        // everything else and reports failure via MAP_FAILED, which is
        // checked below before the pointer is ever used.
        let ptr = unsafe {
            mmap(
                std::ptr::null_mut(),
                len,
                PROT_READ,
                MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr.addr() == usize::MAX {
            // MAP_FAILED is (void *)-1.
            return Err(io::Error::last_os_error());
        }
        Ok(Mmap { ptr, len })
    }

    /// The mapped bytes.
    #[inline]
    pub fn as_slice(&self) -> &[u8] {
        if self.len == 0 {
            return &[];
        }
        // SAFETY: `ptr` came from a successful mmap of exactly `len`
        // bytes, is non-null (len > 0 branch), is never unmapped before
        // Drop, and the mapping is PROT_READ so the pointed-to bytes
        // are valid, initialized (file-backed pages), and immutable for
        // the lifetime of the returned borrow, which cannot outlive
        // `self`.
        unsafe { std::slice::from_raw_parts(self.ptr.cast::<u8>(), self.len) }
    }

    /// Mapped length in bytes.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` for a zero-length mapping.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl Drop for Mmap {
    fn drop(&mut self) {
        if self.len == 0 {
            return;
        }
        // SAFETY: `ptr`/`len` describe a mapping obtained from mmap and
        // not yet unmapped (Drop runs at most once); after this call
        // nothing dereferences the pointer again. The return value is
        // deliberately ignored: munmap only fails for invalid inputs,
        // which the invariant above rules out, and a failed unmap in a
        // destructor has no recovery anyway.
        let _ = unsafe { munmap(self.ptr, self.len) };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    #[test]
    fn maps_and_reads_back() {
        let mut p = std::env::temp_dir();
        p.push(format!("nwhy-mmap-test-{}", std::process::id()));
        let mut f = File::create(&p).unwrap();
        f.write_all(b"The quick brown fox").unwrap();
        drop(f);
        let m = Mmap::map(&File::open(&p).unwrap()).unwrap();
        assert_eq!(m.as_slice(), b"The quick brown fox");
        assert_eq!(m.len(), 19);
        assert!(!m.is_empty());
        drop(m);
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn empty_file_maps_to_empty_slice() {
        let mut p = std::env::temp_dir();
        p.push(format!("nwhy-mmap-empty-{}", std::process::id()));
        File::create(&p).unwrap();
        let m = Mmap::map(&File::open(&p).unwrap()).unwrap();
        assert!(m.is_empty());
        assert_eq!(m.as_slice(), b"");
        std::fs::remove_file(&p).ok();
    }
}
