//! The `NWHYPAK1` on-disk layout: header parsing and the packer.
//!
//! Byte-level layout (everything little-endian; see DESIGN.md §8 for the
//! normative spec):
//!
//! ```text
//! offset  size  field
//!      0     8  magic  b"NWHYPAK1"
//!      8     4  version (u32) — currently 1
//!     12     4  flags (u32) — bit 0: weights sections present
//!     16     8  n_e (u64)   — number of hyperedges
//!     24     8  n_v (u64)   — number of hypernodes
//!     32     8  nnz (u64)   — number of incidences
//!     40   6×8  section byte lengths (u64 each), in file order:
//!               edge_index, edge_payload, node_index, node_payload,
//!               edge_weights, node_weights
//!     88     …  the six sections, back to back, same order
//! ```
//!
//! Each of the two CSRs (hyperedge→hypernodes, hypernode→hyperedges)
//! contributes an *index* and a *payload* section. The payload is the
//! concatenation of the rows, each row being `varint(len)` followed by
//! `len` varints: the first neighbor absolute, every later one the gap
//! from its predecessor (non-negative, because neighbor slices are
//! sorted; `0` encodes a duplicate incidence). The index is a sampled
//! offset table: one u64 payload byte offset for every
//! [`SAMPLE_EVERY`]-th row, so random access costs one table lookup plus
//! at most `SAMPLE_EVERY - 1` row skips. Weights sections, when flagged,
//! are plain `f64` little-endian arrays in row-major incidence order
//! (`nnz` entries each).

use crate::varint;
use crate::StoreError;
use nwhy_core::Hypergraph;
use std::io::Write;

/// File magic: format name and major revision in one token.
pub const MAGIC: [u8; 8] = *b"NWHYPAK1";

/// Header version this build reads and writes.
pub const VERSION: u32 = 1;

/// Flag bit 0: the two weights sections are present.
pub const FLAG_WEIGHTS: u32 = 1;

/// Row-start sampling interval of the offset index. Power of two so the
/// `row / SAMPLE_EVERY` lookup is a shift; 64 keeps the index under 2%
/// of payload size even for degenerate all-empty-row inputs.
pub const SAMPLE_EVERY: usize = 64;

/// Total header size in bytes.
pub const HEADER_LEN: usize = 88;

/// Parsed `NWHYPAK1` header: the counts plus the six section lengths
/// (in file order).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Header {
    /// Flags word (see [`FLAG_WEIGHTS`]).
    pub flags: u32,
    /// Number of hyperedges.
    pub n_e: u64,
    /// Number of hypernodes.
    pub n_v: u64,
    /// Number of incidences.
    pub nnz: u64,
    /// Byte lengths of the six sections, in file order: edge index,
    /// edge payload, node index, node payload, edge weights, node
    /// weights.
    pub section_lens: [u64; 6],
}

impl Header {
    /// `true` if the weights sections are present.
    pub fn weighted(&self) -> bool {
        self.flags & FLAG_WEIGHTS != 0
    }

    /// Serializes the header into its 88-byte wire form.
    pub fn to_bytes(&self) -> [u8; HEADER_LEN] {
        let mut out = [0u8; HEADER_LEN];
        out[0..8].copy_from_slice(&MAGIC);
        out[8..12].copy_from_slice(&VERSION.to_le_bytes());
        out[12..16].copy_from_slice(&self.flags.to_le_bytes());
        out[16..24].copy_from_slice(&self.n_e.to_le_bytes());
        out[24..32].copy_from_slice(&self.n_v.to_le_bytes());
        out[32..40].copy_from_slice(&self.nnz.to_le_bytes());
        for (i, len) in self.section_lens.iter().enumerate() {
            out[40 + 8 * i..48 + 8 * i].copy_from_slice(&len.to_le_bytes());
        }
        out
    }

    /// Parses and sanity-checks a header from the front of `bytes`.
    ///
    /// Rejects short buffers, wrong magic, unknown versions, and unknown
    /// flag bits; does *not* yet check the section lengths against the
    /// buffer (the caller knows the total size and does that).
    // lint: obs: fixed-size header decode inside the (instrumented)
    // open path; nwhy-store carries no nwhy-obs dependency
    pub fn parse(bytes: &[u8]) -> Result<Header, StoreError> {
        if bytes.len() < HEADER_LEN {
            // Report the magic mismatch first when even that much is
            // missing — "not a pak file" beats "truncated" for a file
            // that was never one.
            if bytes.len() < 8 || bytes[0..8] != MAGIC {
                let mut found = [0u8; 8];
                let n = bytes.len().min(8);
                found[..n].copy_from_slice(&bytes[..n]);
                return Err(StoreError::BadMagic { found });
            }
            return Err(StoreError::Truncated {
                what: "NWHYPAK1 header",
                offset: bytes.len(),
            });
        }
        if bytes[0..8] != MAGIC {
            let mut found = [0u8; 8];
            found.copy_from_slice(&bytes[0..8]);
            return Err(StoreError::BadMagic { found });
        }
        let version = read_u32(bytes, 8);
        if version != VERSION {
            return Err(StoreError::BadVersion { found: version });
        }
        let flags = read_u32(bytes, 12);
        if flags & !FLAG_WEIGHTS != 0 {
            return Err(StoreError::UnknownFlags { flags });
        }
        let mut section_lens = [0u64; 6];
        for (i, len) in section_lens.iter_mut().enumerate() {
            *len = read_u64(bytes, 40 + 8 * i);
        }
        Ok(Header {
            flags,
            n_e: read_u64(bytes, 16),
            n_v: read_u64(bytes, 24),
            nnz: read_u64(bytes, 32),
            section_lens,
        })
    }
}

/// Reads a little-endian `u32` at `pos`; caller guarantees bounds.
fn read_u32(bytes: &[u8], pos: usize) -> u32 {
    let chunk: [u8; 4] = bytes[pos..pos + 4].try_into().expect("4-byte slice");
    u32::from_le_bytes(chunk)
}

/// Reads a little-endian `u64` at `pos`; caller guarantees bounds.
fn read_u64(bytes: &[u8], pos: usize) -> u64 {
    let chunk: [u8; 8] = bytes[pos..pos + 8].try_into().expect("8-byte slice");
    u64::from_le_bytes(chunk)
}

/// Reads a little-endian `u64` at `pos` with a bounds check — the
/// decoder-side sibling of [`read_u64`] for untrusted offsets.
pub(crate) fn read_u64_checked(bytes: &[u8], pos: usize) -> Result<u64, StoreError> {
    let end = pos.checked_add(8).ok_or(StoreError::Corrupt {
        what: "u64 read offset overflow",
        offset: pos,
    })?;
    let chunk: [u8; 8] = bytes
        .get(pos..end)
        .ok_or(StoreError::Truncated {
            what: "u64 field",
            offset: pos,
        })?
        .try_into()
        .expect("8-byte slice");
    Ok(u64::from_le_bytes(chunk))
}

/// Gap-encodes one CSR into `(index, payload)` byte sections: the
/// payload is the concatenated varint rows, the index a sampled
/// row-start offset table (offsets relative to this CSR's payload
/// start).
// lint: obs: crate-internal packer covered by the `io.write_packed`
// span in nwhy-io; nwhy-store carries no nwhy-obs dependency
pub(crate) fn pack_csr(csr: &nwgraph::Csr) -> (Vec<u8>, Vec<u8>) {
    let mut index = Vec::new();
    let mut payload = Vec::new();
    for u in 0..csr.num_vertices() {
        if u % SAMPLE_EVERY == 0 {
            index.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        }
        let nbrs = csr.neighbors(nwhy_core::ids::from_usize(u));
        varint::encode(nbrs.len() as u64, &mut payload);
        let mut prev: u64 = 0;
        for (i, &v) in nbrs.iter().enumerate() {
            let v = u64::from(v);
            let gap = if i == 0 { v } else { v - prev };
            varint::encode(gap, &mut payload);
            prev = v;
        }
    }
    (index, payload)
}

/// Serializes the weights of one CSR (must be weighted) as `f64` LE.
fn pack_weights(ws: &[f64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(ws.len() * 8);
    for w in ws {
        out.extend_from_slice(&w.to_le_bytes());
    }
    out
}

/// Packs a hypergraph into a complete in-memory `NWHYPAK1` image.
///
/// Both bi-adjacency CSRs are encoded (the transpose is *not* recomputed
/// at open time — mutual indexing is part of the format, so opening is
/// pure decoding). Weights round-trip when present on both CSRs.
pub fn pack_hypergraph(h: &Hypergraph) -> Vec<u8> {
    let (edge_index, edge_payload) = pack_csr(h.edges());
    let (node_index, node_payload) = pack_csr(h.nodes());
    let weighted = h.is_weighted();
    let edge_weights = h.edges().weights().map(pack_weights).unwrap_or_default();
    let node_weights = h.nodes().weights().map(pack_weights).unwrap_or_default();

    let header = Header {
        flags: if weighted { FLAG_WEIGHTS } else { 0 },
        n_e: h.num_hyperedges() as u64,
        n_v: h.num_hypernodes() as u64,
        nnz: h.num_incidences() as u64,
        section_lens: [
            edge_index.len() as u64,
            edge_payload.len() as u64,
            node_index.len() as u64,
            node_payload.len() as u64,
            edge_weights.len() as u64,
            node_weights.len() as u64,
        ],
    };

    let total = HEADER_LEN
        + edge_index.len()
        + edge_payload.len()
        + node_index.len()
        + node_payload.len()
        + edge_weights.len()
        + node_weights.len();
    let mut out = Vec::with_capacity(total);
    out.extend_from_slice(&header.to_bytes());
    out.extend_from_slice(&edge_index);
    out.extend_from_slice(&edge_payload);
    out.extend_from_slice(&node_index);
    out.extend_from_slice(&node_payload);
    out.extend_from_slice(&edge_weights);
    out.extend_from_slice(&node_weights);
    out
}

/// Packs `h` and writes the image to `w`.
pub fn write_packed<W: Write>(w: &mut W, h: &Hypergraph) -> Result<(), StoreError> {
    w.write_all(&pack_hypergraph(h))?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use nwhy_core::fixtures::paper_hypergraph;

    #[test]
    fn header_roundtrip() {
        let h = Header {
            flags: FLAG_WEIGHTS,
            n_e: 4,
            n_v: 9,
            nnz: 18,
            section_lens: [8, 30, 16, 40, 144, 144],
        };
        let bytes = h.to_bytes();
        assert_eq!(Header::parse(&bytes).unwrap(), h);
    }

    #[test]
    fn rejects_bad_magic() {
        let mut bytes = Header {
            flags: 0,
            n_e: 0,
            n_v: 0,
            nnz: 0,
            section_lens: [0; 6],
        }
        .to_bytes();
        bytes[0] = b'X';
        assert!(matches!(
            Header::parse(&bytes),
            Err(StoreError::BadMagic { .. })
        ));
    }

    #[test]
    fn rejects_unknown_version_and_flags() {
        let good = Header {
            flags: 0,
            n_e: 1,
            n_v: 1,
            nnz: 1,
            section_lens: [8, 2, 8, 2, 0, 0],
        };
        let mut v = good.to_bytes();
        v[8] = 9;
        assert!(matches!(
            Header::parse(&v),
            Err(StoreError::BadVersion { found: 9 })
        ));
        let mut f = good.to_bytes();
        f[12] = 0xfe;
        assert!(matches!(
            Header::parse(&f),
            Err(StoreError::UnknownFlags { .. })
        ));
    }

    #[test]
    fn rejects_truncated_header() {
        let bytes = Header {
            flags: 0,
            n_e: 0,
            n_v: 0,
            nnz: 0,
            section_lens: [0; 6],
        }
        .to_bytes();
        assert!(matches!(
            Header::parse(&bytes[..40]),
            Err(StoreError::Truncated { .. })
        ));
        // shorter than the magic itself → "not a pak file"
        assert!(matches!(
            Header::parse(&bytes[..4]),
            Err(StoreError::BadMagic { .. })
        ));
    }

    #[test]
    fn packed_image_is_smaller_than_raw_pairs() {
        let h = paper_hypergraph();
        let img = pack_hypergraph(&h);
        // NWHYBIN1 stores 8 bytes per incidence (two u32s) plus a header;
        // the paper fixture's IDs are tiny, so gaps are single bytes.
        assert!(img.len() < HEADER_LEN + 8 * h.num_incidences() + 40);
    }
}
