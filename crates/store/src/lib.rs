//! `nwhy-store` — compressed, zero-copy on-disk hypergraph storage.
//!
//! The NWHy paper's representations are all RAM-resident; this crate is
//! the workspace's answer to ROADMAP item 1 (beyond-RAM inputs). It
//! defines the `NWHYPAK1` file format — both bi-adjacency CSRs with
//! delta-gap varint neighbor lists and a sampled-offset index over row
//! starts, little-endian, versioned header — and serves it back through
//! [`CompressedHypergraph`], which implements
//! [`nwhy_core::HyperAdjacency`] so every s-line kernel, BFS/CC, and
//! s-metric runs on the packed form unchanged.
//!
//! Two backends hold the image ([`Storage`]): a read-only `mmap` (unix,
//! `mmap` cargo feature, the zero-copy path) and a pure-safe
//! read-into-`Vec` fallback. The mmap syscall wrapper in [`mod@mmap`] is
//! the **only** unsafe code in the workspace; `cargo xtask lint`
//! enforces that confinement.
//!
//! # Examples
//!
//! ```
//! use nwhy_core::{fixtures::paper_hypergraph, HyperAdjacency};
//! use nwhy_store::{pack_hypergraph, CompressedHypergraph};
//!
//! let h = paper_hypergraph();
//! let image = pack_hypergraph(&h);
//! let c = CompressedHypergraph::from_bytes(image).unwrap();
//! assert_eq!(c.num_hyperedges(), 4);
//! assert_eq!(&*HyperAdjacency::edge_neighbors(&c, 0), h.edge_members(0));
//! ```

pub mod compressed;
pub mod error;
pub mod format;
#[cfg(all(unix, feature = "mmap"))]
pub mod mmap;
pub mod storage;
pub mod varint;

pub use compressed::{CompressedHypergraph, StorageStats};
pub use error::StoreError;
pub use format::{pack_hypergraph, write_packed, Header, FLAG_WEIGHTS, MAGIC, VERSION};
pub use storage::{Backend, Storage};
