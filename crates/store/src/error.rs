//! Error taxonomy for the storage layer.

use std::fmt;
use std::io;

/// Everything that can go wrong packing, opening, or decoding an
/// `NWHYPAK1` file. Structural errors carry the byte offset of the
/// first inconsistency so a corrupt file can be diagnosed with a hex
/// dump.
#[derive(Debug)]
pub enum StoreError {
    /// The underlying file could not be read or written.
    Io(io::Error),
    /// The file does not start with the `NWHYPAK1` magic.
    BadMagic {
        /// The first eight bytes actually found (zero-padded if short).
        found: [u8; 8],
    },
    /// The header's format version is not one this build understands.
    BadVersion {
        /// The version field from the header.
        found: u32,
    },
    /// The header carries flag bits this build does not know. Refusing
    /// (rather than ignoring) keeps future format extensions safe: an
    /// old reader never silently misinterprets new sections.
    UnknownFlags {
        /// The offending flags word.
        flags: u32,
    },
    /// The buffer ended before a complete value could be read.
    Truncated {
        /// What was being decoded.
        what: &'static str,
        /// Byte offset (within the section being decoded) of the read.
        offset: usize,
    },
    /// A structurally impossible encoding: overlong varint, row length
    /// exceeding the file's own incidence count, sampled index entry
    /// pointing outside the payload, and similar.
    Corrupt {
        /// Which invariant broke.
        what: &'static str,
        /// Byte offset (within the section being decoded) of the
        /// violation.
        offset: usize,
    },
    /// A 64-bit header count does not fit the host's `usize` (only
    /// possible on 32-bit hosts, but checked everywhere).
    CountOverflow {
        /// Which count overflowed.
        what: &'static str,
        /// The value that did not fit.
        value: u64,
    },
    /// The requested backend is not available in this build/platform
    /// (e.g. `Backend::Mmap` with the `mmap` feature off or on
    /// non-unix).
    BackendUnavailable {
        /// Which backend was requested.
        backend: &'static str,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "i/o error: {e}"),
            StoreError::BadMagic { found } => {
                write!(f, "not an NWHYPAK1 file (magic {:02x?})", found)
            }
            StoreError::BadVersion { found } => {
                write!(f, "unsupported NWHYPAK1 version {found}")
            }
            StoreError::UnknownFlags { flags } => {
                write!(f, "unknown NWHYPAK1 flag bits {flags:#x}")
            }
            StoreError::Truncated { what, offset } => {
                write!(f, "truncated while reading {what} at byte {offset}")
            }
            StoreError::Corrupt { what, offset } => {
                write!(f, "corrupt NWHYPAK1 payload: {what} at byte {offset}")
            }
            StoreError::CountOverflow { what, value } => {
                write!(f, "{what} {value} does not fit this host's usize")
            }
            StoreError::BackendUnavailable { backend } => {
                write!(f, "{backend} backend not available in this build")
            }
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        StoreError::Io(e)
    }
}
