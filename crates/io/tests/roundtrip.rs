//! Property-based round-trip tests across every serialization format:
//! for arbitrary hypergraphs, write → read must be the identity (up to
//! each format's documented ID-space caveats, which the generator
//! avoids by always using trailing IDs).

use nwhy_core::ids;
use nwhy_core::{BiEdgeList, Hypergraph};
use nwhy_io::tsv::Orientation;
use proptest::prelude::*;
use std::io::Cursor;

/// Arbitrary hypergraph with fixed ID spaces (so every format preserves
/// them: MM and binary store explicit dims; TSV/hyperedge-list infer
/// them, so we pin the max IDs with a final anchored incidence).
fn arb_hypergraph() -> impl Strategy<Value = Hypergraph> {
    (1usize..10, 1usize..14)
        .prop_flat_map(|(ne, nv)| {
            let pairs = proptest::collection::btree_set(
                (0..ids::from_usize(ne), 0..ids::from_usize(nv)),
                0..40,
            );
            (Just(ne), Just(nv), pairs)
        })
        .prop_map(|(ne, nv, pairs)| {
            let mut incidences: Vec<(u32, u32)> = pairs.into_iter().collect();
            // anchor the top corner so inferring readers see full dims
            incidences.push((ids::from_usize(ne) - 1, ids::from_usize(nv) - 1));
            incidences.sort_unstable();
            incidences.dedup();
            let bel = BiEdgeList::from_incidences(ne, nv, incidences);
            Hypergraph::from_biedgelist(&bel)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn matrix_market_roundtrip(h in arb_hypergraph()) {
        let mut buf = Vec::new();
        nwhy_io::write_matrix_market(&mut buf, &h).unwrap();
        let h2 = nwhy_io::read_matrix_market(Cursor::new(buf)).unwrap();
        prop_assert_eq!(h, h2);
    }

    #[test]
    fn binary_roundtrip(h in arb_hypergraph()) {
        let mut buf = Vec::new();
        nwhy_io::write_binary(&mut buf, &h).unwrap();
        let h2 = nwhy_io::read_binary(Cursor::new(buf)).unwrap();
        prop_assert_eq!(h, h2);
    }

    #[test]
    fn tsv_roundtrip(h in arb_hypergraph()) {
        // TSV infers ID spaces from max IDs — anchored by construction
        let mut buf = Vec::new();
        nwhy_io::write_bipartite_tsv(&mut buf, &h).unwrap();
        let h2 = nwhy_io::read_bipartite_tsv(Cursor::new(buf), Orientation::NodeEdge).unwrap();
        prop_assert_eq!(h, h2);
    }

    #[test]
    fn hyperedge_list_roundtrip(h in arb_hypergraph()) {
        // format caveat: trailing empty hyperedges and trailing isolated
        // nodes are not representable; compare on incidences + edge count
        let mut buf = Vec::new();
        nwhy_io::write_hyperedge_list(&mut buf, &h).unwrap();
        let h2 = nwhy_io::read_hyperedge_list(Cursor::new(buf)).unwrap();
        // all edges up to the last non-empty one survive exactly
        prop_assert!(h2.num_hyperedges() <= h.num_hyperedges());
        for e in 0..ids::from_usize(h2.num_hyperedges()) {
            prop_assert_eq!(h2.edge_members(e), h.edge_members(e));
        }
        prop_assert_eq!(h2.num_incidences(), h.num_incidences());
    }

    #[test]
    fn adjoin_reader_consistent_with_direct(h in arb_hypergraph()) {
        let mut buf = Vec::new();
        nwhy_io::write_matrix_market(&mut buf, &h).unwrap();
        let (a, ne, nv) = nwhy_io::read_adjoin(Cursor::new(buf)).unwrap();
        prop_assert_eq!(ne, h.num_hyperedges());
        prop_assert_eq!(nv, h.num_hypernodes());
        prop_assert_eq!(a.to_hypergraph(), h);
    }

    #[test]
    fn cross_format_equivalence(h in arb_hypergraph()) {
        // MM → binary → TSV → MM must be the identity
        let mut mm = Vec::new();
        nwhy_io::write_matrix_market(&mut mm, &h).unwrap();
        let via_mm = nwhy_io::read_matrix_market(Cursor::new(mm)).unwrap();
        let mut bin = Vec::new();
        nwhy_io::write_binary(&mut bin, &via_mm).unwrap();
        let via_bin = nwhy_io::read_binary(Cursor::new(bin)).unwrap();
        let mut tsv = Vec::new();
        nwhy_io::write_bipartite_tsv(&mut tsv, &via_bin).unwrap();
        let via_tsv =
            nwhy_io::read_bipartite_tsv(Cursor::new(tsv), Orientation::NodeEdge).unwrap();
        prop_assert_eq!(via_tsv, h);
    }
}
