//! Property tests for the NWHYBIN1 binary format: write → read is the
//! identity on arbitrary hypergraphs, weighted and unweighted, including
//! empty rows (memberless hyperedges) and singleton edges.

use nwhy_core::{BiEdgeList, Hypergraph, Id};
use nwhy_io::{read_binary, write_binary};
use proptest::prelude::*;
use std::io::Cursor;

fn arb_memberships() -> impl Strategy<Value = Vec<Vec<Id>>> {
    proptest::collection::vec(proptest::collection::btree_set(0u32..40, 0..8), 0..14)
        .prop_map(|sets| sets.into_iter().map(|s| s.into_iter().collect()).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn prop_write_read_identity(ms in arb_memberships()) {
        let h = Hypergraph::from_memberships(&ms);
        let mut buf = Vec::new();
        write_binary(&mut buf, &h).unwrap();
        let h2 = read_binary(Cursor::new(buf)).unwrap();
        prop_assert_eq!(h2, h);
    }

    #[test]
    fn prop_write_read_identity_weighted(
        // weights drawn as scaled integers: the vendored proptest has no
        // float strategies, and exact-representable values make the
        // roundtrip equality assertion meaningful
        triples in proptest::collection::vec(((0u32..10), (0u32..20), 0u32..2000), 0..30)
    ) {
        let (incidences, weights): (Vec<(Id, Id)>, Vec<f64>) = triples
            .into_iter()
            .map(|(e, v, w)| ((e, v), (f64::from(w) - 1000.0) / 8.0))
            .unzip();
        let bel = BiEdgeList::from_weighted_incidences(10, 20, incidences, weights);
        let h = Hypergraph::from_biedgelist(&bel);
        let mut buf = Vec::new();
        write_binary(&mut buf, &h).unwrap();
        let h2 = read_binary(Cursor::new(buf)).unwrap();
        prop_assert_eq!(h2.is_weighted(), h.is_weighted());
        prop_assert_eq!(h2, h);
    }

    #[test]
    fn prop_truncation_never_panics(ms in arb_memberships(), cut_pct in 0usize..100) {
        let h = Hypergraph::from_memberships(&ms);
        let mut buf = Vec::new();
        write_binary(&mut buf, &h).unwrap();
        let full = buf.len();
        let cut = full * cut_pct / 100;
        if cut < full {
            // any strict prefix must error, never panic or hang
            prop_assert!(read_binary(Cursor::new(buf[..cut].to_vec())).is_err());
        }
    }
}
