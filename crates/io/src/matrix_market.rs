//! Matrix Market coordinate format for hypergraph incidence matrices.
//!
//! The incidence matrix of a hypergraph is `n × m` (hypernodes ×
//! hyperedges, §II-C of the paper) and generally *rectangular* — the
//! reason NWHy's data structures support rectangular matrices
//! (§III-B.1a). The reader accepts `pattern`, `integer`, and `real`
//! coordinate matrices in `general` symmetry (values are ignored;
//! presence of an entry is the incidence), with rows interpreted as
//! hypernodes and columns as hyperedges.

use crate::error::{checked_id, IoError};
use nwhy_core::ids;
use nwhy_core::{BiEdgeList, Hypergraph, Id};
use nwhy_obs::Counter;
use std::io::{BufRead, Write};

/// Reads a Matrix Market coordinate file as a hypergraph incidence
/// matrix: rows = hypernodes, columns = hyperedges.
pub fn read_matrix_market<R: BufRead>(reader: R) -> Result<Hypergraph, IoError> {
    let bel = read_biedgelist(reader)?;
    Ok(Hypergraph::from_biedgelist(&bel))
}

/// Reads the raw [`BiEdgeList`] (the paper's `graph_reader(mm_file)`).
pub fn read_biedgelist<R: BufRead>(reader: R) -> Result<BiEdgeList, IoError> {
    let _span = nwhy_obs::span("io.read_mm");
    let mut lines = reader.lines().enumerate();

    // Header line.
    let (line_no, header) = loop {
        match lines.next() {
            Some((i, l)) => {
                let l = l?;
                if !l.trim().is_empty() {
                    break (i + 1, l);
                }
            }
            None => return Err(IoError::parse(1, "empty file")),
        }
    };
    let header_lc = header.to_ascii_lowercase();
    if !header_lc.starts_with("%%matrixmarket") {
        return Err(IoError::parse(line_no, "missing %%MatrixMarket header"));
    }
    if !header_lc.contains("coordinate") {
        return Err(IoError::parse(
            line_no,
            "only coordinate (sparse) matrices are supported",
        ));
    }
    if header_lc.contains("complex") || header_lc.contains("hermitian") {
        return Err(IoError::parse(
            line_no,
            "complex matrices are not supported",
        ));
    }
    let symmetric = header_lc.contains("symmetric");
    let has_values = !header_lc.contains("pattern");

    // Dimension line (after % comments).
    let (dim_line_no, dims) = loop {
        match lines.next() {
            Some((i, l)) => {
                let l = l?;
                let t = l.trim();
                if t.is_empty() || t.starts_with('%') {
                    continue;
                }
                break (i + 1, l);
            }
            None => return Err(IoError::parse(line_no + 1, "missing dimension line")),
        }
    };
    let mut it = dims.split_whitespace();
    let parse_usize = |tok: Option<&str>, what: &str| -> Result<usize, IoError> {
        tok.ok_or_else(|| IoError::parse(dim_line_no, format!("missing {what}")))?
            .parse::<usize>()
            .map_err(|_| IoError::parse(dim_line_no, format!("invalid {what}")))
    };
    let n_rows = parse_usize(it.next(), "row count")?;
    let n_cols = parse_usize(it.next(), "column count")?;
    let nnz = parse_usize(it.next(), "nonzero count")?;
    if symmetric && n_rows != n_cols {
        return Err(IoError::parse(
            dim_line_no,
            "symmetric matrix must be square",
        ));
    }

    let mut incidences: Vec<(Id, Id)> = Vec::with_capacity(nnz);
    let mut seen = 0usize;
    let mut bytes = 0u64;
    let mut parsed = 0u64;
    for (i, l) in lines {
        let l = l?;
        if nwhy_obs::enabled() {
            bytes += l.len() as u64 + 1;
            parsed += 1;
        }
        let t = l.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        let mut toks = t.split_whitespace();
        let row: usize = toks
            .next()
            .ok_or_else(|| IoError::parse(i + 1, "missing row index"))?
            .parse()
            .map_err(|_| IoError::parse(i + 1, "invalid row index"))?;
        let col: usize = toks
            .next()
            .ok_or_else(|| IoError::parse(i + 1, "missing column index"))?
            .parse()
            .map_err(|_| IoError::parse(i + 1, "invalid column index"))?;
        if has_values && toks.next().is_none() {
            return Err(IoError::parse(i + 1, "missing value"));
        }
        if row == 0 || col == 0 || row > n_rows || col > n_cols {
            return Err(IoError::parse(
                i + 1,
                format!("entry ({row},{col}) out of bounds {n_rows}x{n_cols}"),
            ));
        }
        // rows = hypernodes, cols = hyperedges; store (hyperedge, hypernode)
        let col_id = checked_id((col - 1) as u64, i + 1, "column (hyperedge) index")?;
        let row_id = checked_id((row - 1) as u64, i + 1, "row (hypernode) index")?;
        incidences.push((col_id, row_id));
        if symmetric && row != col {
            incidences.push((row_id, col_id));
        }
        seen += 1;
    }
    if seen != nnz {
        return Err(IoError::parse(
            dim_line_no,
            format!("expected {nnz} entries, found {seen}"),
        ));
    }
    nwhy_obs::add(Counter::IoBytesRead, bytes);
    nwhy_obs::add(Counter::IoLinesParsed, parsed);
    nwhy_obs::add(Counter::IoIncidencesRead, incidences.len() as u64);
    let mut bel = BiEdgeList::from_incidences(n_cols, n_rows, incidences);
    bel.sort_dedup();
    Ok(bel)
}

/// Writes `h` as a Matrix Market `pattern general` coordinate file
/// (rows = hypernodes, columns = hyperedges). Round-trips with
/// [`read_matrix_market`].
pub fn write_matrix_market<W: Write>(mut w: W, h: &Hypergraph) -> Result<(), IoError> {
    let _span = nwhy_obs::span("io.write_mm");
    writeln!(w, "%%MatrixMarket matrix coordinate pattern general")?;
    writeln!(
        w,
        "% hypergraph incidence matrix: rows=hypernodes cols=hyperedges"
    )?;
    writeln!(
        w,
        "{} {} {}",
        h.num_hypernodes(),
        h.num_hyperedges(),
        h.num_incidences()
    )?;
    for e in 0..ids::from_usize(h.num_hyperedges()) {
        for &v in h.edge_members(e) {
            writeln!(w, "{} {}", v + 1, e + 1)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use nwhy_core::fixtures::paper_hypergraph;
    use std::io::Cursor;

    fn read_str(s: &str) -> Result<Hypergraph, IoError> {
        read_matrix_market(Cursor::new(s))
    }

    #[test]
    fn reads_pattern_general() {
        let mm = "%%MatrixMarket matrix coordinate pattern general\n\
                  % a comment\n\
                  3 2 4\n\
                  1 1\n\
                  2 1\n\
                  2 2\n\
                  3 2\n";
        let h = read_str(mm).unwrap();
        assert_eq!(h.num_hypernodes(), 3);
        assert_eq!(h.num_hyperedges(), 2);
        assert_eq!(h.edge_members(0), &[0, 1]);
        assert_eq!(h.edge_members(1), &[1, 2]);
    }

    #[test]
    fn reads_real_values_ignoring_them() {
        let mm = "%%MatrixMarket matrix coordinate real general\n\
                  2 2 2\n\
                  1 1 3.5\n\
                  2 2 -1.0\n";
        let h = read_str(mm).unwrap();
        assert_eq!(h.num_incidences(), 2);
    }

    #[test]
    fn reads_symmetric_expanding_both_triangles() {
        let mm = "%%MatrixMarket matrix coordinate pattern symmetric\n\
                  3 3 2\n\
                  2 1\n\
                  3 3\n";
        let h = read_str(mm).unwrap();
        // entry (2,1) also implies (1,2); diagonal (3,3) only once
        assert_eq!(h.num_incidences(), 3);
        assert_eq!(h.edge_members(0), &[1]);
        assert_eq!(h.edge_members(1), &[0]);
        assert_eq!(h.edge_members(2), &[2]);
    }

    #[test]
    fn rejects_missing_header() {
        assert!(matches!(
            read_str("3 2 0\n"),
            Err(IoError::Parse { line: 1, .. })
        ));
    }

    #[test]
    fn rejects_array_format() {
        let e = read_str("%%MatrixMarket matrix array real general\n2 2\n1.0\n").unwrap_err();
        assert!(e.to_string().contains("coordinate"));
    }

    #[test]
    fn rejects_out_of_bounds_entry() {
        let mm = "%%MatrixMarket matrix coordinate pattern general\n2 2 1\n3 1\n";
        let e = read_str(mm).unwrap_err();
        assert!(e.to_string().contains("out of bounds"));
    }

    #[test]
    fn rejects_zero_index() {
        let mm = "%%MatrixMarket matrix coordinate pattern general\n2 2 1\n0 1\n";
        assert!(read_str(mm).is_err());
    }

    #[test]
    fn rejects_id_overflow() {
        let mm = "%%MatrixMarket matrix coordinate pattern general\n\
                  4294967297 1 1\n\
                  4294967297 1\n";
        let e = read_str(mm).unwrap_err();
        assert!(matches!(e, IoError::IdOverflow { line: 3, .. }));
    }

    #[test]
    fn rejects_wrong_entry_count() {
        let mm = "%%MatrixMarket matrix coordinate pattern general\n2 2 2\n1 1\n";
        let e = read_str(mm).unwrap_err();
        assert!(e.to_string().contains("expected 2 entries"));
    }

    #[test]
    fn rejects_missing_value_in_real_matrix() {
        let mm = "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1\n";
        let e = read_str(mm).unwrap_err();
        assert!(e.to_string().contains("missing value"));
    }

    #[test]
    fn rejects_empty_file() {
        assert!(read_str("").is_err());
        assert!(read_str("\n\n").is_err());
    }

    #[test]
    fn duplicate_entries_are_deduped() {
        let mm = "%%MatrixMarket matrix coordinate pattern general\n2 1 2\n1 1\n1 1\n";
        let h = read_str(mm).unwrap();
        assert_eq!(h.num_incidences(), 1);
    }

    #[test]
    fn roundtrip_fixture() {
        let h = paper_hypergraph();
        let mut buf = Vec::new();
        write_matrix_market(&mut buf, &h).unwrap();
        let h2 = read_matrix_market(Cursor::new(buf)).unwrap();
        assert_eq!(h, h2);
    }

    #[test]
    fn roundtrip_with_isolated_entities() {
        // hyperedge 1 empty, hypernode 3 isolated
        let bel = nwhy_core::BiEdgeList::from_incidences(2, 4, vec![(0, 0), (0, 2)]);
        let h = Hypergraph::from_biedgelist(&bel);
        let mut buf = Vec::new();
        write_matrix_market(&mut buf, &h).unwrap();
        let h2 = read_matrix_market(Cursor::new(buf)).unwrap();
        assert_eq!(h, h2);
    }
}
