//! Graphviz DOT export for hypergraphs and their projections.
//!
//! Visual inspection of small hypergraphs (like the paper's Figures 1–5)
//! is easiest through Graphviz. Two exporters:
//!
//! - [`write_dot_bipartite`] — the bipartite view (Fig. 1b): hyperedges
//!   as boxes, hypernodes as circles, incidences as edges;
//! - [`write_dot_linegraph`] — an s-line graph (Fig. 5), with edge
//!   `penwidth` proportional to the overlap when weights are supplied,
//!   exactly how the paper renders connection strength.

use crate::error::IoError;
use nwhy_core::ids;
use nwhy_core::{Hypergraph, Id};
use std::io::Write;

/// Writes the bipartite representation of `h` as an undirected DOT graph.
pub fn write_dot_bipartite<W: Write>(mut w: W, h: &Hypergraph) -> Result<(), IoError> {
    let _span = nwhy_obs::span("io.write_dot_bipartite");
    writeln!(w, "graph hypergraph {{")?;
    writeln!(
        w,
        "  // bipartite view: boxes = hyperedges, circles = hypernodes"
    )?;
    for e in 0..ids::from_usize(h.num_hyperedges()) {
        writeln!(w, "  e{e} [shape=box, label=\"e{e}\"];")?;
    }
    for v in 0..ids::from_usize(h.num_hypernodes()) {
        writeln!(w, "  v{v} [shape=circle, label=\"{v}\"];")?;
    }
    for e in 0..ids::from_usize(h.num_hyperedges()) {
        for &v in h.edge_members(e) {
            writeln!(w, "  e{e} -- v{v};")?;
        }
    }
    writeln!(w, "}}")?;
    Ok(())
}

/// Writes an s-line graph as DOT. `triples` are canonical
/// `(e, f, overlap)` edges (from
/// `nwhy_core::slinegraph::weighted::slinegraph_weighted_edges`); the
/// overlap becomes the `penwidth`, reproducing Fig. 5's line widths.
pub fn write_dot_linegraph<W: Write>(
    mut w: W,
    num_hyperedges: usize,
    s: usize,
    triples: &[(Id, Id, u32)],
) -> Result<(), IoError> {
    let _span = nwhy_obs::span("io.write_dot_linegraph");
    writeln!(w, "graph slinegraph_s{s} {{")?;
    writeln!(w, "  label=\"{s}-line graph\";")?;
    for e in 0..num_hyperedges {
        writeln!(w, "  e{e} [shape=circle, label=\"e{e}\"];")?;
    }
    for &(a, b, o) in triples {
        writeln!(w, "  e{a} -- e{b} [penwidth={o}, label=\"{o}\"];")?;
    }
    writeln!(w, "}}")?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use nwhy_core::fixtures::paper_hypergraph;
    use nwhy_core::slinegraph::weighted::slinegraph_weighted_edges;
    use nwhy_util::partition::Strategy;

    #[test]
    fn bipartite_dot_contains_all_entities() {
        let h = paper_hypergraph();
        let mut buf = Vec::new();
        write_dot_bipartite(&mut buf, &h).unwrap();
        let dot = String::from_utf8(buf).unwrap();
        assert!(dot.starts_with("graph hypergraph {"));
        assert!(dot.trim_end().ends_with('}'));
        for e in 0..4 {
            assert!(dot.contains(&format!("e{e} [shape=box")));
        }
        for v in 0..9 {
            assert!(dot.contains(&format!("v{v} [shape=circle")));
        }
        // 18 incidences → 18 "--" incidence lines
        assert_eq!(dot.matches(" -- v").count(), 18);
    }

    #[test]
    fn linegraph_dot_widths_match_overlaps() {
        let h = paper_hypergraph();
        let triples = slinegraph_weighted_edges(&h, 1, Strategy::AUTO);
        let mut buf = Vec::new();
        write_dot_linegraph(&mut buf, 4, 1, &triples).unwrap();
        let dot = String::from_utf8(buf).unwrap();
        assert!(dot.contains("e0 -- e3 [penwidth=3"));
        assert!(dot.contains("e0 -- e1 [penwidth=1"));
        assert_eq!(dot.matches(" -- e").count(), 5);
    }

    #[test]
    fn empty_hypergraph_emits_valid_dot() {
        let h = nwhy_core::Hypergraph::from_memberships(&[]);
        let mut buf = Vec::new();
        write_dot_bipartite(&mut buf, &h).unwrap();
        let dot = String::from_utf8(buf).unwrap();
        assert!(dot.contains("graph hypergraph {"));
    }
}
