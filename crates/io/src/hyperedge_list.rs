//! Plain-text hyperedge lists: one hyperedge per line.
//!
//! Each non-comment line holds the whitespace-separated hypernode IDs
//! (0-based) of one hyperedge; a blank line is an empty hyperedge.
//! Lines starting with `#` are comments. This is the layout community
//! datasets (e.g. SNAP's `com-*.all.cmty.txt` files, the source of the
//! paper's Orkut/Friendster hypergraphs) use, modulo their 1-based IDs.

use crate::error::{checked_id, IoError};
use nwhy_core::ids;
use nwhy_core::{Hypergraph, Id};
use nwhy_obs::Counter;
use std::io::{BufRead, Write};

/// Reads a hyperedge-list file. The hypernode ID space is the smallest
/// `0..n` covering all IDs seen.
pub fn read_hyperedge_list<R: BufRead>(reader: R) -> Result<Hypergraph, IoError> {
    let _span = nwhy_obs::span("io.read_hyperedge_list");
    let mut memberships: Vec<Vec<Id>> = Vec::new();
    let mut bytes = 0u64;
    let mut parsed = 0u64;
    for (i, line) in reader.lines().enumerate() {
        let line = line?;
        if nwhy_obs::enabled() {
            bytes += line.len() as u64 + 1;
            parsed += 1;
        }
        let t = line.trim();
        if t.starts_with('#') {
            continue;
        }
        let mut members = Vec::new();
        for tok in t.split_whitespace() {
            let raw: u64 = tok
                .parse()
                .map_err(|_| IoError::parse(i + 1, format!("invalid hypernode ID {tok:?}")))?;
            members.push(checked_id(raw, i + 1, "hypernode ID")?);
        }
        members.sort_unstable();
        members.dedup();
        memberships.push(members);
    }
    // Trailing blank lines are formatting, not hyperedges: trim them.
    while memberships.last().is_some_and(Vec::is_empty) {
        memberships.pop();
    }
    nwhy_obs::add(Counter::IoBytesRead, bytes);
    nwhy_obs::add(Counter::IoLinesParsed, parsed);
    if nwhy_obs::enabled() {
        let inc: u64 = memberships.iter().map(|m| m.len() as u64).sum();
        nwhy_obs::add(Counter::IoIncidencesRead, inc);
    }
    Ok(Hypergraph::from_memberships(&memberships))
}

/// Writes `h` in the hyperedge-list format; round-trips with
/// [`read_hyperedge_list`] when no trailing hyperedge is empty and the
/// hypernode ID space has no trailing isolated IDs.
pub fn write_hyperedge_list<W: Write>(mut w: W, h: &Hypergraph) -> Result<(), IoError> {
    let _span = nwhy_obs::span("io.write_hyperedge_list");
    writeln!(w, "# nwhy hyperedge list: one hyperedge per line")?;
    for e in 0..ids::from_usize(h.num_hyperedges()) {
        let members: Vec<String> = h.edge_members(e).iter().map(|v| v.to_string()).collect();
        writeln!(w, "{}", members.join(" "))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use nwhy_core::fixtures::paper_hypergraph;
    use std::io::Cursor;

    fn read_str(s: &str) -> Result<Hypergraph, IoError> {
        read_hyperedge_list(Cursor::new(s))
    }

    #[test]
    fn reads_basic_file() {
        let h = read_str("0 1 2\n2 3\n# comment\n3\n").unwrap();
        assert_eq!(h.num_hyperedges(), 3);
        assert_eq!(h.num_hypernodes(), 4);
        assert_eq!(h.edge_members(1), &[2, 3]);
    }

    #[test]
    fn interior_blank_line_is_empty_hyperedge() {
        let h = read_str("0 1\n\n2\n").unwrap();
        assert_eq!(h.num_hyperedges(), 3);
        assert_eq!(h.edge_degree(1), 0);
    }

    #[test]
    fn trailing_blank_lines_trimmed() {
        let h = read_str("0 1\n\n\n").unwrap();
        assert_eq!(h.num_hyperedges(), 1);
    }

    #[test]
    fn duplicate_members_deduped() {
        let h = read_str("5 5 5 1\n").unwrap();
        assert_eq!(h.edge_members(0), &[1, 5]);
    }

    #[test]
    fn rejects_garbage_ids() {
        let e = read_str("0 x 2\n").unwrap_err();
        assert!(e.to_string().contains("invalid hypernode ID"));
        assert!(read_str("-1\n").is_err());
    }

    #[test]
    fn rejects_id_overflow() {
        // One past u32::MAX does not fit the Id space. (u32::MAX itself is
        // a legal label, but materializing its 2^32-node ID space would
        // allocate gigabytes — the boundary is covered by checked_id.)
        let e = read_str("0 4294967296\n").unwrap_err();
        assert!(matches!(
            e,
            IoError::IdOverflow {
                line: 1,
                value: 4_294_967_296,
                ..
            }
        ));
        assert!(e.to_string().contains("32-bit Id space"));
    }

    #[test]
    fn roundtrip_fixture() {
        let h = paper_hypergraph();
        let mut buf = Vec::new();
        write_hyperedge_list(&mut buf, &h).unwrap();
        let h2 = read_hyperedge_list(Cursor::new(buf)).unwrap();
        assert_eq!(h, h2);
    }

    #[test]
    fn empty_input_is_empty_hypergraph() {
        let h = read_str("").unwrap();
        assert_eq!(h.num_hyperedges(), 0);
        assert_eq!(h.num_hypernodes(), 0);
    }
}
