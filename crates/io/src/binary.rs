//! A compact binary hypergraph format.
//!
//! Reading multi-hundred-megabyte Matrix Market text files dominates
//! end-to-end time for large inputs, so (like the C++ NWHy tooling, which
//! caches binary CSR dumps) this crate ships a straightforward
//! little-endian binary format:
//!
//! ```text
//! magic   8 bytes  "NWHYBIN1"
//! flags   u64      bit 0: weights present
//! n_e     u64      hyperedge-space size
//! n_v     u64      hypernode-space size
//! nnz     u64      incidence count
//! pairs   nnz × (u32 hyperedge, u32 hypernode)
//! weights nnz × f64   (only if flags bit 0)
//! ```

use crate::error::IoError;
use nwhy_core::{ids, BiEdgeList, Hypergraph};
use nwhy_obs::Counter;
use std::io::{Read, Write};

const MAGIC: &[u8; 8] = b"NWHYBIN1";
const FLAG_WEIGHTS: u64 = 1;

/// Panic-free fixed-size split: a short slice becomes a parse error
/// instead of an abort, keeping the whole decode path clear of the
/// lint's `panic-path` rule.
fn take_array<const N: usize>(b: &[u8]) -> Result<([u8; N], &[u8]), IoError> {
    b.split_first_chunk::<N>()
        .map(|(a, rest)| (*a, rest))
        .ok_or_else(|| IoError::parse(1, "truncated record"))
}

fn read_u64<R: Read>(r: &mut R) -> Result<u64, IoError> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    Ok(u64::from_le_bytes(buf))
}

/// Incidence pairs (and weights) are read in bounded chunks of this many
/// entries, so a corrupt header claiming a huge `nnz` fails with a
/// truncation error after at most one chunk of over-allocation instead of
/// reserving `nnz` entries up front.
const READ_CHUNK: usize = 1 << 16;

/// Reads the binary format into a hypergraph.
pub fn read_binary<R: Read>(mut r: R) -> Result<Hypergraph, IoError> {
    let _span = nwhy_obs::span("io.read_binary");
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(IoError::parse(1, "bad magic: not an NWHYBIN1 file"));
    }
    let flags = read_u64(&mut r)?;
    if flags & !FLAG_WEIGHTS != 0 {
        return Err(IoError::parse(1, format!("unknown flags {flags:#x}")));
    }
    let dim = |raw: u64, what: &'static str| -> Result<usize, IoError> {
        usize::try_from(raw).map_err(|_| IoError::parse(1, format!("{what} {raw} overflows usize")))
    };
    let ne = dim(read_u64(&mut r)?, "hyperedge-space size")?;
    let nv = dim(read_u64(&mut r)?, "hypernode-space size")?;
    let nnz = dim(read_u64(&mut r)?, "incidence count")?;
    // Defensive cap: refuse nnz that cannot possibly be honest (> u32
    // pair space) to avoid absurd allocations on corrupt headers.
    if nnz > (1usize << 40) {
        return Err(IoError::parse(1, format!("implausible nnz {nnz}")));
    }
    // Chunked payload read: each chunk's bytes must actually arrive
    // before the next chunk's capacity is reserved, so memory growth is
    // bounded by the real stream length, not by the header's claim.
    let mut incidences = Vec::new();
    let mut buf = vec![0u8; nnz.min(READ_CHUNK) * 8];
    let mut remaining = nnz;
    while remaining > 0 {
        let take = remaining.min(READ_CHUNK);
        // lint: panic: take ≤ buf capacity by construction (buf is sized to nnz.min(READ_CHUNK) * 8)
        let bytes = &mut buf[..take * 8];
        r.read_exact(bytes)?;
        incidences.reserve(take);
        for pair in bytes.chunks_exact(8) {
            // the pair words are read as u32 and are already `Id`-sized
            let (e_bytes, rest) = take_array::<4>(pair)?;
            let (v_bytes, _) = take_array::<4>(rest)?;
            let e = u32::from_le_bytes(e_bytes);
            let v = u32::from_le_bytes(v_bytes);
            if ids::to_usize(e) >= ne || ids::to_usize(v) >= nv {
                return Err(IoError::parse(
                    1,
                    format!("incidence ({e},{v}) out of bounds {ne}x{nv}"),
                ));
            }
            incidences.push((e, v));
        }
        remaining -= take;
    }
    let weighted = flags & FLAG_WEIGHTS != 0;
    let bel = if weighted {
        let mut weights = Vec::new();
        let mut remaining = nnz;
        while remaining > 0 {
            let take = remaining.min(READ_CHUNK);
            // lint: panic: take ≤ buf capacity by construction (buf is sized to nnz.min(READ_CHUNK) * 8)
            let bytes = &mut buf[..take * 8];
            r.read_exact(bytes)?;
            weights.reserve(take);
            for w in bytes.chunks_exact(8) {
                let (w_bytes, _) = take_array::<8>(w)?;
                weights.push(f64::from_le_bytes(w_bytes));
            }
            remaining -= take;
        }
        BiEdgeList::from_weighted_incidences(ne, nv, incidences, weights)
    } else {
        BiEdgeList::from_incidences(ne, nv, incidences)
    };
    // header (magic + flags + 3 dims) + pairs + optional weights
    let bytes = 40 + nnz as u64 * if weighted { 16 } else { 8 };
    nwhy_obs::add(Counter::IoBytesRead, bytes);
    nwhy_obs::add(Counter::IoIncidencesRead, nnz as u64);
    Ok(Hypergraph::from_biedgelist(&bel))
}

/// Writes `h` in the binary format; round-trips with [`read_binary`].
pub fn write_binary<W: Write>(mut w: W, h: &Hypergraph) -> Result<(), IoError> {
    let _span = nwhy_obs::span("io.write_binary");
    w.write_all(MAGIC)?;
    let weighted = h.is_weighted();
    let flags: u64 = if weighted { FLAG_WEIGHTS } else { 0 };
    w.write_all(&flags.to_le_bytes())?;
    w.write_all(&(h.num_hyperedges() as u64).to_le_bytes())?;
    w.write_all(&(h.num_hypernodes() as u64).to_le_bytes())?;
    w.write_all(&(h.num_incidences() as u64).to_le_bytes())?;
    for e in 0..ids::from_usize(h.num_hyperedges()) {
        for &v in h.edge_members(e) {
            w.write_all(&e.to_le_bytes())?;
            w.write_all(&v.to_le_bytes())?;
        }
    }
    if weighted {
        for e in 0..ids::from_usize(h.num_hyperedges()) {
            for (_, wgt) in h.edges().weighted_neighbors(e) {
                w.write_all(&wgt.to_le_bytes())?;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use nwhy_core::fixtures::paper_hypergraph;
    use std::io::Cursor;

    #[test]
    fn roundtrip_unweighted() {
        let h = paper_hypergraph();
        let mut buf = Vec::new();
        write_binary(&mut buf, &h).unwrap();
        let h2 = read_binary(Cursor::new(buf)).unwrap();
        assert_eq!(h, h2);
    }

    #[test]
    fn roundtrip_weighted() {
        let bel = BiEdgeList::from_weighted_incidences(
            2,
            3,
            vec![(0, 0), (0, 2), (1, 1)],
            vec![0.25, -1.5, 7.0],
        );
        let h = Hypergraph::from_biedgelist(&bel);
        let mut buf = Vec::new();
        write_binary(&mut buf, &h).unwrap();
        let h2 = read_binary(Cursor::new(buf)).unwrap();
        assert_eq!(h, h2);
        assert!(h2.is_weighted());
    }

    #[test]
    fn rejects_bad_magic() {
        let e = read_binary(Cursor::new(b"NOTMAGIC\0\0\0\0".to_vec())).unwrap_err();
        assert!(e.to_string().contains("magic"));
    }

    #[test]
    fn rejects_truncated_file() {
        let h = paper_hypergraph();
        let mut buf = Vec::new();
        write_binary(&mut buf, &h).unwrap();
        buf.truncate(buf.len() - 3);
        assert!(read_binary(Cursor::new(buf)).is_err());
    }

    #[test]
    fn rejects_out_of_bounds_incidence() {
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&0u64.to_le_bytes()); // flags
        buf.extend_from_slice(&1u64.to_le_bytes()); // ne
        buf.extend_from_slice(&1u64.to_le_bytes()); // nv
        buf.extend_from_slice(&1u64.to_le_bytes()); // nnz
        buf.extend_from_slice(&5u32.to_le_bytes()); // e out of range
        buf.extend_from_slice(&0u32.to_le_bytes());
        let e = read_binary(Cursor::new(buf)).unwrap_err();
        assert!(e.to_string().contains("out of bounds"));
    }

    #[test]
    fn rejects_truncated_header() {
        // magic + flags only: the dims are missing
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&0u64.to_le_bytes());
        assert!(read_binary(Cursor::new(buf)).is_err());
        // half a magic
        assert!(read_binary(Cursor::new(b"NWHY".to_vec())).is_err());
    }

    #[test]
    fn lying_nnz_fails_without_huge_allocation() {
        // header claims ~1e9 incidences but the payload is 1 pair; the
        // chunked reader must fail on the missing bytes (first chunk)
        // rather than reserving the full claimed capacity up front.
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&0u64.to_le_bytes()); // flags
        buf.extend_from_slice(&10u64.to_le_bytes()); // ne
        buf.extend_from_slice(&10u64.to_le_bytes()); // nv
        buf.extend_from_slice(&1_000_000_000u64.to_le_bytes()); // nnz (lie)
        buf.extend_from_slice(&1u32.to_le_bytes());
        buf.extend_from_slice(&2u32.to_le_bytes());
        let e = read_binary(Cursor::new(buf)).unwrap_err();
        assert!(matches!(e, IoError::Io(_)), "expected truncation, got {e}");
    }

    #[test]
    fn rejects_truncated_weights_section() {
        let bel = BiEdgeList::from_weighted_incidences(
            2,
            3,
            vec![(0, 0), (0, 2), (1, 1)],
            vec![0.25, -1.5, 7.0],
        );
        let h = Hypergraph::from_biedgelist(&bel);
        let mut buf = Vec::new();
        write_binary(&mut buf, &h).unwrap();
        buf.truncate(buf.len() - 10); // cuts into the weights section
        assert!(read_binary(Cursor::new(buf)).is_err());
    }

    #[test]
    fn rejects_unknown_flags() {
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&8u64.to_le_bytes()); // unknown flag bit
        buf.extend_from_slice(&[0u8; 24]);
        assert!(read_binary(Cursor::new(buf)).is_err());
    }

    #[test]
    fn every_truncation_errors_never_aborts() {
        // malformed inputs must surface as `Err`, not a process abort:
        // every strict prefix of a valid weighted file is malformed
        let bel = BiEdgeList::from_weighted_incidences(
            2,
            3,
            vec![(0, 0), (0, 2), (1, 1)],
            vec![0.25, -1.5, 7.0],
        );
        let h = Hypergraph::from_biedgelist(&bel);
        let mut buf = Vec::new();
        write_binary(&mut buf, &h).unwrap();
        for len in 0..buf.len() {
            assert!(
                read_binary(Cursor::new(buf[..len].to_vec())).is_err(),
                "prefix of {len} bytes must error"
            );
        }
    }

    #[test]
    fn empty_hypergraph_roundtrip() {
        let h = Hypergraph::from_memberships(&[]);
        let mut buf = Vec::new();
        write_binary(&mut buf, &h).unwrap();
        let h2 = read_binary(Cursor::new(buf)).unwrap();
        assert_eq!(h2.num_hyperedges(), 0);
    }
}
