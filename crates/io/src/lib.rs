//! `nwhy-io` — hypergraph file formats.
//!
//! The NWHy paper's Listing 2 reads hypergraphs from Matrix Market files
//! (`graph_reader(mm_file)` for the bi-edge-list, `graph_reader_adjoin`
//! for the adjoined form). This crate provides:
//!
//! - [`matrix_market`] — the Matrix Market coordinate format for
//!   (rectangular) incidence matrices, read and write;
//! - [`hyperedge_list`] — a plain-text "one hyperedge per line" format,
//!   convenient for examples and small datasets;
//! - [`adjoin_reader`] — the `graph_reader_adjoin` equivalent: reads an
//!   incidence file straight into an [`nwhy_core::AdjoinGraph`] and
//!   reports the partition sizes (`nrealedges`, `nrealnodes`);
//! - [`tsv`] — KONECT-style bipartite TSV edge lists (the format the
//!   paper's Orkut-group/LiveJournal/Web inputs ship in);
//! - [`binary`] — a compact binary cache format for large inputs;
//! - [`pack`] — the compressed NWHYPAK1 format (`nwhy-store`): pack a
//!   hypergraph to disk, open it zero-copy through a mmap or owned
//!   backend.
//!
//! All readers work over any `io::BufRead`, so they are testable from
//! in-memory strings and usable on files.
//!
//! # Examples
//!
//! ```
//! let mm = "%%MatrixMarket matrix coordinate pattern general\n\
//!           3 2 4\n1 1\n2 1\n2 2\n3 2\n";
//! let h = nwhy_io::read_matrix_market(std::io::Cursor::new(mm)).unwrap();
//! assert_eq!(h.num_hyperedges(), 2);
//! assert_eq!(h.edge_members(0), &[0, 1]);
//!
//! let mut out = Vec::new();
//! nwhy_io::write_matrix_market(&mut out, &h).unwrap();
//! let again = nwhy_io::read_matrix_market(std::io::Cursor::new(out)).unwrap();
//! assert_eq!(h, again);
//! ```

#![forbid(unsafe_code)]

pub mod adjoin_reader;
pub mod binary;
pub mod dot;
pub mod error;
pub mod hyperedge_list;
pub mod matrix_market;
pub mod pack;
pub mod tsv;

pub use adjoin_reader::read_adjoin;
pub use binary::{read_binary, write_binary};
pub use error::IoError;
pub use hyperedge_list::{read_hyperedge_list, write_hyperedge_list};
pub use matrix_market::{read_matrix_market, write_matrix_market};
pub use pack::{open_packed, read_packed, write_packed_file};
pub use tsv::{read_bipartite_tsv, write_bipartite_tsv, Orientation};
