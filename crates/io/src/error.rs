//! Error type shared by the readers and writers.

use std::fmt;

/// Errors produced by `nwhy-io` readers/writers.
#[derive(Debug)]
pub enum IoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Malformed input, with the 1-based line number where it was found.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
}

impl IoError {
    /// Convenience constructor for parse errors.
    pub fn parse(line: usize, message: impl Into<String>) -> Self {
        IoError::Parse {
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for IoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "I/O error: {e}"),
            IoError::Parse { line, message } => write!(f, "parse error at line {line}: {message}"),
        }
    }
}

impl std::error::Error for IoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IoError::Io(e) => Some(e),
            IoError::Parse { .. } => None,
        }
    }
}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let e = IoError::parse(3, "bad token");
        assert_eq!(e.to_string(), "parse error at line 3: bad token");
        let e: IoError = std::io::Error::new(std::io::ErrorKind::NotFound, "gone").into();
        assert!(e.to_string().contains("gone"));
    }

    #[test]
    fn source_chains() {
        use std::error::Error;
        let e: IoError = std::io::Error::other("x").into();
        assert!(e.source().is_some());
        assert!(IoError::parse(1, "y").source().is_none());
    }
}
