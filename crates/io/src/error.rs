//! Error type shared by the readers and writers.

use std::fmt;

/// Errors produced by `nwhy-io` readers/writers.
#[derive(Debug)]
pub enum IoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Malformed input, with the 1-based line number where it was found.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// An entity label in the input does not fit the 32-bit [`Id`]
    /// space — the input is well-formed but unrepresentable, which is a
    /// different failure than a malformed token.
    ///
    /// [`Id`]: nwhy_core::Id
    IdOverflow {
        /// 1-based line number (1 for binary headers).
        line: usize,
        /// The oversized label, as parsed.
        value: u64,
        /// Which kind of entity the label names.
        what: &'static str,
    },
}

impl IoError {
    /// Convenience constructor for parse errors.
    pub fn parse(line: usize, message: impl Into<String>) -> Self {
        IoError::Parse {
            line,
            message: message.into(),
        }
    }

    /// Convenience constructor for ID-overflow errors.
    pub fn id_overflow(line: usize, value: u64, what: &'static str) -> Self {
        IoError::IdOverflow { line, value, what }
    }
}

/// Converts a parsed label into the 32-bit `Id` space, failing with
/// [`IoError::IdOverflow`] instead of silently truncating.
pub(crate) fn checked_id(
    raw: u64,
    line: usize,
    what: &'static str,
) -> Result<nwhy_core::Id, IoError> {
    nwhy_core::Id::try_from(raw).map_err(|_| IoError::id_overflow(line, raw, what))
}

impl fmt::Display for IoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "I/O error: {e}"),
            IoError::Parse { line, message } => write!(f, "parse error at line {line}: {message}"),
            IoError::IdOverflow { line, value, what } => write!(
                f,
                "ID overflow at line {line}: {what} {value} does not fit the 32-bit Id space"
            ),
        }
    }
}

impl std::error::Error for IoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IoError::Io(e) => Some(e),
            IoError::Parse { .. } | IoError::IdOverflow { .. } => None,
        }
    }
}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let e = IoError::parse(3, "bad token");
        assert_eq!(e.to_string(), "parse error at line 3: bad token");
        let e: IoError = std::io::Error::new(std::io::ErrorKind::NotFound, "gone").into();
        assert!(e.to_string().contains("gone"));
    }

    #[test]
    fn id_overflow_formats() {
        let e = IoError::id_overflow(7, u64::from(u32::MAX) + 1, "hypernode ID");
        assert_eq!(
            e.to_string(),
            "ID overflow at line 7: hypernode ID 4294967296 does not fit the 32-bit Id space"
        );
    }

    #[test]
    fn source_chains() {
        use std::error::Error;
        let e: IoError = std::io::Error::other("x").into();
        assert!(e.source().is_some());
        assert!(IoError::parse(1, "y").source().is_none());
    }
}
