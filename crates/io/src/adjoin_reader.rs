//! The `graph_reader_adjoin` equivalent (Listing 2 of the paper).
//!
//! Reads a Matrix Market incidence file and returns the hypergraph
//! already adjoined into one index set, together with the two partition
//! cardinalities the paper's API reports through its `nrealedges` /
//! `nrealnodes` out-parameters.

use crate::error::IoError;
use crate::matrix_market::read_biedgelist;
use nwhy_core::{AdjoinGraph, Hypergraph};
use std::io::BufRead;

/// Reads an incidence matrix and adjoins it. Returns
/// `(adjoin_graph, nrealedges, nrealnodes)`.
pub fn read_adjoin<R: BufRead>(reader: R) -> Result<(AdjoinGraph, usize, usize), IoError> {
    let bel = read_biedgelist(reader)?;
    let ne = bel.num_hyperedges();
    let nv = bel.num_hypernodes();
    let h = Hypergraph::from_biedgelist(&bel);
    Ok((AdjoinGraph::from_hypergraph(&h), ne, nv))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix_market::write_matrix_market;
    use nwhy_core::fixtures::paper_hypergraph;
    use std::io::Cursor;

    #[test]
    fn reads_fixture_as_adjoin() {
        let h = paper_hypergraph();
        let mut buf = Vec::new();
        write_matrix_market(&mut buf, &h).unwrap();
        let (a, ne, nv) = read_adjoin(Cursor::new(buf)).unwrap();
        assert_eq!(ne, 4);
        assert_eq!(nv, 9);
        assert_eq!(a.num_vertices(), 13);
        assert_eq!(a.to_hypergraph(), h);
    }

    #[test]
    fn propagates_parse_errors() {
        assert!(read_adjoin(Cursor::new("not a matrix")).is_err());
    }

    #[test]
    fn empty_matrix() {
        let mm = "%%MatrixMarket matrix coordinate pattern general\n0 0 0\n";
        let (a, ne, nv) = read_adjoin(Cursor::new(mm)).unwrap();
        assert_eq!((ne, nv), (0, 0));
        assert_eq!(a.num_vertices(), 0);
    }
}
