//! KONECT-style bipartite TSV edge lists.
//!
//! The paper's Orkut-group, Web, and LiveJournal inputs come from the
//! Koblenz Network Collection (KONECT) as bipartite graphs: one
//! whitespace-separated `left right [weight [timestamp]]` line per edge,
//! 1-based IDs, `%` comment/header lines. [`Orientation`] says which
//! column holds the hyperedges.

use crate::error::{checked_id, IoError};
use nwhy_core::ids;
use nwhy_core::{BiEdgeList, Hypergraph, Id};
use nwhy_obs::Counter;
use std::io::{BufRead, Write};

/// Which TSV column holds the hyperedge IDs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Orientation {
    /// `left = hypernode, right = hyperedge` (KONECT user–group files).
    NodeEdge,
    /// `left = hyperedge, right = hypernode`.
    EdgeNode,
}

/// Reads a bipartite TSV into a hypergraph. IDs are 1-based in the file
/// (KONECT convention) and become 0-based; the ID spaces are sized by the
/// largest ID seen. Weight/timestamp columns are ignored.
pub fn read_bipartite_tsv<R: BufRead>(
    reader: R,
    orientation: Orientation,
) -> Result<Hypergraph, IoError> {
    let _span = nwhy_obs::span("io.read_tsv");
    let mut incidences: Vec<(Id, Id)> = Vec::new();
    let mut max_edge = 0usize;
    let mut max_node = 0usize;
    let mut bytes = 0u64;
    let mut parsed = 0u64;
    for (i, line) in reader.lines().enumerate() {
        let line = line?;
        if nwhy_obs::enabled() {
            bytes += line.len() as u64 + 1;
            parsed += 1;
        }
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') || t.starts_with('#') {
            continue;
        }
        let mut toks = t.split_whitespace();
        let a: usize = toks
            .next()
            .ok_or_else(|| IoError::parse(i + 1, "missing left ID"))?
            .parse()
            .map_err(|_| IoError::parse(i + 1, "invalid left ID"))?;
        let b: usize = toks
            .next()
            .ok_or_else(|| IoError::parse(i + 1, "missing right ID"))?
            .parse()
            .map_err(|_| IoError::parse(i + 1, "invalid right ID"))?;
        if a == 0 || b == 0 {
            return Err(IoError::parse(i + 1, "IDs are 1-based; found 0"));
        }
        let (edge, node) = match orientation {
            Orientation::NodeEdge => (b, a),
            Orientation::EdgeNode => (a, b),
        };
        max_edge = max_edge.max(edge);
        max_node = max_node.max(node);
        incidences.push((
            checked_id((edge - 1) as u64, i + 1, "hyperedge ID")?,
            checked_id((node - 1) as u64, i + 1, "hypernode ID")?,
        ));
    }
    nwhy_obs::add(Counter::IoBytesRead, bytes);
    nwhy_obs::add(Counter::IoLinesParsed, parsed);
    nwhy_obs::add(Counter::IoIncidencesRead, incidences.len() as u64);
    let mut bel = BiEdgeList::from_incidences(max_edge, max_node, incidences);
    bel.sort_dedup();
    Ok(Hypergraph::from_biedgelist(&bel))
}

/// Writes `h` as a bipartite TSV (1-based, `node<TAB>edge` per line, a
/// `%` header). Round-trips with
/// `read_bipartite_tsv(_, Orientation::NodeEdge)` when the trailing IDs
/// of both spaces are in use.
pub fn write_bipartite_tsv<W: Write>(mut w: W, h: &Hypergraph) -> Result<(), IoError> {
    let _span = nwhy_obs::span("io.write_bipartite_tsv");
    writeln!(w, "% bip unweighted (node edge), 1-based")?;
    for e in 0..ids::from_usize(h.num_hyperedges()) {
        for &v in h.edge_members(e) {
            writeln!(w, "{}\t{}", v + 1, e + 1)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use nwhy_core::fixtures::paper_hypergraph;
    use std::io::Cursor;

    #[test]
    fn reads_node_edge_orientation() {
        let tsv = "% bip\n1 1\n2 1\n2 2\n3 2\n";
        let h = read_bipartite_tsv(Cursor::new(tsv), Orientation::NodeEdge).unwrap();
        assert_eq!(h.num_hyperedges(), 2);
        assert_eq!(h.num_hypernodes(), 3);
        assert_eq!(h.edge_members(0), &[0, 1]);
        assert_eq!(h.edge_members(1), &[1, 2]);
    }

    #[test]
    fn reads_edge_node_orientation() {
        let tsv = "1 1\n1 2\n2 2\n";
        let h = read_bipartite_tsv(Cursor::new(tsv), Orientation::EdgeNode).unwrap();
        assert_eq!(h.num_hyperedges(), 2);
        assert_eq!(h.edge_members(0), &[0, 1]);
        assert_eq!(h.edge_members(1), &[1]);
    }

    #[test]
    fn ignores_weight_and_timestamp_columns() {
        let tsv = "1 1 5.0 1234567\n2 1 1.0 1234568\n";
        let h = read_bipartite_tsv(Cursor::new(tsv), Orientation::NodeEdge).unwrap();
        assert_eq!(h.num_incidences(), 2);
    }

    #[test]
    fn rejects_zero_based_ids() {
        let e = read_bipartite_tsv(Cursor::new("0 1\n"), Orientation::NodeEdge).unwrap_err();
        assert!(e.to_string().contains("1-based"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(read_bipartite_tsv(Cursor::new("a b\n"), Orientation::NodeEdge).is_err());
        assert!(read_bipartite_tsv(Cursor::new("1\n"), Orientation::NodeEdge).is_err());
    }

    #[test]
    fn rejects_id_overflow() {
        // 1-based 4294967297 maps to 0-based 4294967296 = u32::MAX + 1
        let e =
            read_bipartite_tsv(Cursor::new("1 4294967297\n"), Orientation::NodeEdge).unwrap_err();
        assert!(matches!(e, IoError::IdOverflow { line: 1, .. }));
    }

    #[test]
    fn duplicates_collapse() {
        let tsv = "1 1\n1 1\n";
        let h = read_bipartite_tsv(Cursor::new(tsv), Orientation::NodeEdge).unwrap();
        assert_eq!(h.num_incidences(), 1);
    }

    #[test]
    fn empty_file_is_empty_hypergraph() {
        let h = read_bipartite_tsv(Cursor::new("% nothing\n"), Orientation::NodeEdge).unwrap();
        assert_eq!(h.num_hyperedges(), 0);
    }

    #[test]
    fn roundtrip_fixture() {
        let h = paper_hypergraph();
        let mut buf = Vec::new();
        write_bipartite_tsv(&mut buf, &h).unwrap();
        let h2 = read_bipartite_tsv(Cursor::new(buf), Orientation::NodeEdge).unwrap();
        assert_eq!(h, h2);
    }
}
