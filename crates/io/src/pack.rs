//! NWHYPAK1 pack/unpack entry points.
//!
//! Thin I/O-layer façade over [`nwhy_store`]: packing writes the
//! compressed on-disk image ([`nwhy_store::format`]), opening hands back
//! a [`CompressedHypergraph`] served from the requested
//! [`Backend`] (mmap or owned buffer). Errors are mapped into the crate's
//! [`IoError`] taxonomy — OS failures stay [`IoError::Io`], format
//! violations become [`IoError::Parse`] with the binary-header line
//! convention (line 1), matching [`crate::binary`].

use crate::error::IoError;
use nwhy_core::Hypergraph;
use nwhy_obs::Counter;
use nwhy_store::{Backend, CompressedHypergraph, StoreError};
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;

/// Maps a storage-layer error into the I/O error taxonomy: OS failures
/// pass through as [`IoError::Io`]; anything else is a malformed file,
/// reported against "line 1" like every binary-header failure.
fn store_err(e: StoreError) -> IoError {
    match e {
        StoreError::Io(e) => IoError::Io(e),
        other => IoError::parse(1, other.to_string()),
    }
}

/// Packs `h` into the NWHYPAK1 format at `path` (overwriting), returning
/// the number of bytes written.
pub fn write_packed_file(path: &Path, h: &Hypergraph) -> Result<u64, IoError> {
    let _span = nwhy_obs::span("io.write_packed");
    let bytes = nwhy_store::pack_hypergraph(h);
    let mut w = BufWriter::new(File::create(path)?);
    w.write_all(&bytes)?;
    w.flush()?;
    Ok(bytes.len() as u64)
}

/// Opens an NWHYPAK1 file through the requested backend without
/// decompressing it: the result serves neighbor queries straight off the
/// packed image (zero-copy when mapped).
pub fn open_packed(path: &Path, backend: Backend) -> Result<CompressedHypergraph, IoError> {
    let _span = nwhy_obs::span("io.open_packed");
    let c = CompressedHypergraph::open(path, backend).map_err(store_err)?;
    nwhy_obs::add(Counter::IoBytesRead, c.stats().total_bytes as u64);
    nwhy_obs::add(Counter::IoIncidencesRead, c.num_incidences() as u64);
    Ok(c)
}

/// Reads an NWHYPAK1 file fully back into an in-memory [`Hypergraph`]
/// (pointer-based bi-adjacency). The inverse of [`write_packed_file`].
pub fn read_packed(path: &Path) -> Result<Hypergraph, IoError> {
    let c = open_packed(path, Backend::Owned)?;
    c.to_hypergraph().map_err(store_err)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nwhy_core::fixtures::paper_hypergraph;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("nwhy-io-pack-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn pack_open_roundtrip() {
        let h = paper_hypergraph();
        let path = tmp("roundtrip.nwhypak");
        let written = write_packed_file(&path, &h).unwrap();
        assert!(written > 0);
        let c = open_packed(&path, Backend::Auto).unwrap();
        assert_eq!(c.num_hyperedges(), h.num_hyperedges());
        assert_eq!(read_packed(&path).unwrap(), h);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_io_error() {
        let e = open_packed(Path::new("/nonexistent/nwhy.pak"), Backend::Auto).unwrap_err();
        assert!(matches!(e, IoError::Io(_)));
    }

    #[test]
    fn garbage_file_is_parse_error() {
        let path = tmp("garbage.nwhypak");
        std::fs::write(&path, b"THIS IS NOT A PACKED HYPERGRAPH FILE").unwrap();
        let e = open_packed(&path, Backend::Auto).unwrap_err();
        assert!(matches!(e, IoError::Parse { line: 1, .. }), "got {e}");
        std::fs::remove_file(&path).ok();
    }
}
