//! `nwhy` — the facade crate for the NWHy-rs workspace.
//!
//! Re-exports the whole framework under one roof and adds the
//! [`session`] API, a Rust mirror of the paper's Python package
//! (Listing 5): create a hypergraph from incidence arrays, ask for an
//! s-line graph, and run s-metric queries against it.
//!
//! ```
//! use nwhy::session::NWHypergraph;
//!
//! // Listing 5's toy input: two hyperedges, both {0, 1, 2}.
//! let col = [0, 0, 0, 1, 1, 1]; // hyperedge of each incidence
//! let row = [0, 1, 2, 0, 1, 2]; // hypernode of each incidence
//! let hg = NWHypergraph::new(&row, &col);
//!
//! let s2lg = hg.s_linegraph(2, true);
//! assert!(s2lg.is_s_connected());
//! assert_eq!(s2lg.s_distance(0, 1), Some(1));
//! ```

#![forbid(unsafe_code)]

pub mod session;

pub use hygra;
pub use nwgraph;
pub use nwhy_core as core;
pub use nwhy_gen as gen;
pub use nwhy_io as io;
pub use nwhy_obs as obs;
pub use nwhy_store as store;
pub use nwhy_util as util;

pub use nwhy_core::algorithms::kcore::KLCore;
pub use nwhy_core::smetrics::WeightedSLineGraph;
pub use nwhy_core::{
    AdjoinGraph, Algorithm, BiEdgeList, BuildOptions, Hypergraph, HypergraphStats, Id,
    InvariantViolation, Relabel, SLineGraph, SLineOutput, Validate,
};
pub use session::NWHypergraph;
