//! The session API — a Rust mirror of the `nwhy` Python package
//! (Listing 5 of the paper).
//!
//! The Python package exposes an `NWHypergraph` object built from
//! parallel `row`/`col`/`weight` arrays (one entry per incidence) and an
//! `s_linegraph` method returning a queryable line-graph object. The Rust
//! [`NWHypergraph`] follows the same object model method-for-method; the
//! line-graph queries live on [`nwhy_core::SLineGraph`], whose method
//! names match Listing 5 (`s_connected_components`, `s_distance`, …).

use nwhy_core::algorithms::kcore::{kl_core, KLCore};
use nwhy_core::algorithms::toplex::toplexes;
use nwhy_core::smetrics::WeightedSLineGraph;
use nwhy_core::{
    AdjoinGraph, Algorithm, BiEdgeList, BuildOptions, DualView, HyperAdjacency, Hypergraph,
    HypergraphStats, Id, SLineBuilder, SLineGraph,
};

/// A hypergraph session object mirroring the paper's Python
/// `nwhy.NWHypergraph`.
#[derive(Debug, Clone, PartialEq)]
pub struct NWHypergraph {
    hypergraph: Hypergraph,
}

impl NWHypergraph {
    /// Builds from parallel incidence arrays, as in
    /// `nwhy.NWHypergraph(row, col, weight)`: `row[i]` is the hypernode
    /// and `col[i]` the hyperedge of incidence `i`. (Weights are accepted
    /// by the Python API but unused by every Listing 5 query; the Rust
    /// mirror drops them.)
    ///
    /// # Panics
    /// Panics if the arrays differ in length.
    pub fn new(row: &[Id], col: &[Id]) -> Self {
        assert_eq!(row.len(), col.len(), "row/col length mismatch");
        let num_nodes = row.iter().map(|&v| v as usize + 1).max().unwrap_or(0);
        let num_edges = col.iter().map(|&e| e as usize + 1).max().unwrap_or(0);
        let incidences: Vec<(Id, Id)> = col.iter().zip(row).map(|(&e, &v)| (e, v)).collect();
        let mut bel = BiEdgeList::from_incidences(num_edges, num_nodes, incidences);
        bel.sort_dedup();
        Self {
            hypergraph: Hypergraph::from_biedgelist(&bel),
        }
    }

    /// Builds with per-incidence weights, as in
    /// `nwhy.NWHypergraph(row, col, weight)`. Duplicate `(row, col)`
    /// pairs collapse to the first occurrence's weight.
    ///
    /// # Panics
    /// Panics if the three arrays differ in length.
    pub fn with_weights(row: &[Id], col: &[Id], weight: &[f64]) -> Self {
        assert_eq!(row.len(), col.len(), "row/col length mismatch");
        assert_eq!(row.len(), weight.len(), "row/weight length mismatch");
        let num_nodes = row.iter().map(|&v| v as usize + 1).max().unwrap_or(0);
        let num_edges = col.iter().map(|&e| e as usize + 1).max().unwrap_or(0);
        let incidences: Vec<(Id, Id)> = col.iter().zip(row).map(|(&e, &v)| (e, v)).collect();
        let mut bel =
            BiEdgeList::from_weighted_incidences(num_edges, num_nodes, incidences, weight.to_vec());
        bel.sort_dedup();
        Self {
            hypergraph: Hypergraph::from_biedgelist(&bel),
        }
    }

    /// Wraps an existing [`Hypergraph`].
    pub fn from_hypergraph(hypergraph: Hypergraph) -> Self {
        Self { hypergraph }
    }

    /// Runs `f` with `ctx` entered on this thread: every span and
    /// counter flush the closure triggers tags its flight-recorder
    /// events with the request id, so concurrent sessions can be
    /// separated in a flight dump. Without the `obs` feature this is a
    /// plain call — [`nwhy_obs::RequestCtx`] is a ZST and entering it
    /// does nothing.
    pub fn with_ctx<R>(&self, ctx: nwhy_obs::RequestCtx, f: impl FnOnce(&Self) -> R) -> R {
        let _guard = ctx.enter();
        f(self)
    }

    /// The underlying bi-adjacency hypergraph.
    pub fn hypergraph(&self) -> &Hypergraph {
        &self.hypergraph
    }

    /// Number of hyperedges.
    pub fn num_hyperedges(&self) -> usize {
        self.hypergraph.num_hyperedges()
    }

    /// Number of hypernodes.
    pub fn num_hypernodes(&self) -> usize {
        self.hypergraph.num_hypernodes()
    }

    /// Table I-style statistics.
    pub fn stats(&self) -> HypergraphStats {
        self.hypergraph.stats()
    }

    /// `hg.s_linegraph(s=s, edges=…)`: the s-line graph over hyperedges
    /// (`edges = true`) or the s-clique graph over hypernodes — the line
    /// graph of the dual (`edges = false`). `s = 1, edges = false` is the
    /// clique expansion. The dual side is a zero-copy [`DualView`]; no
    /// dual hypergraph is materialized.
    pub fn s_linegraph(&self, s: usize, edges: bool) -> SLineGraph {
        if edges {
            SLineGraph::new(&self.hypergraph, s)
        } else {
            SLineGraph::new(&DualView::new(&self.hypergraph), s)
        }
    }

    /// Like [`NWHypergraph::s_linegraph`] with an explicit construction
    /// algorithm and options.
    pub fn s_linegraph_with(
        &self,
        s: usize,
        edges: bool,
        algo: Algorithm,
        opts: &BuildOptions,
    ) -> SLineGraph {
        if edges {
            SLineGraph::with_algorithm(&self.hypergraph, s, algo, opts)
        } else {
            SLineGraph::with_algorithm(&DualView::new(&self.hypergraph), s, algo, opts)
        }
    }

    /// `hg.s_linegraphs([s…], edges=…)`: an ensemble of line graphs for
    /// several `s` values, sharing one counting pass.
    pub fn s_linegraphs(&self, s_values: &[usize], edges: bool) -> Vec<SLineGraph> {
        fn build<A: HyperAdjacency + ?Sized>(repr: &A, s_values: &[usize]) -> Vec<SLineGraph> {
            let nv = repr.num_hyperedges();
            SLineBuilder::new(repr)
                .ensemble_edges(s_values)
                .into_iter()
                .zip(s_values)
                .map(|(pairs, &s)| {
                    let mut el = nwgraph::EdgeList::from_edges(nv, pairs);
                    el.symmetrize();
                    SLineGraph::from_csr(s, nwgraph::Csr::from_edge_list(&el))
                })
                .collect()
        }
        if edges {
            build(&self.hypergraph, s_values)
        } else {
            build(&DualView::new(&self.hypergraph), s_values)
        }
    }

    /// `hg.toplexes()`: IDs of the maximal hyperedges.
    pub fn toplexes(&self) -> Vec<Id> {
        toplexes(&self.hypergraph)
    }

    /// The weighted s-line graph: edges carry exact overlap sizes (the
    /// line widths of the paper's Fig. 5).
    pub fn weighted_s_linegraph(&self, s: usize) -> WeightedSLineGraph {
        WeightedSLineGraph::new(&self.hypergraph, s)
    }

    /// The (k, ℓ)-core: the largest sub-hypergraph where every surviving
    /// hypernode keeps ≥ k hyperedges and every surviving hyperedge keeps
    /// ≥ ℓ members.
    pub fn kl_core(&self, k: usize, l: usize) -> KLCore {
        kl_core(&self.hypergraph, k, l)
    }

    /// Simplifies to the maximal hyperedges (toplex restriction);
    /// returns the simplified session and the surviving original IDs.
    pub fn restrict_to_toplexes(&self) -> (NWHypergraph, Vec<Id>) {
        let (h, map) = nwhy_core::transform::restrict_to_toplexes(&self.hypergraph);
        (NWHypergraph::from_hypergraph(h), map)
    }

    /// s-connected components computed *online* — the overlap tests run
    /// through the bipartite indirection and the s-line graph is never
    /// materialized (the §I space/time trade-off, space-lean side).
    pub fn s_connected_components_online(&self, s: usize) -> Vec<Id> {
        nwhy_core::algorithms::s_components::s_connected_components_online(&self.hypergraph, s)
    }

    /// Online `is_s_connected` (see
    /// [`NWHypergraph::s_connected_components_online`]).
    pub fn is_s_connected_online(&self, s: usize) -> bool {
        nwhy_core::algorithms::s_components::is_s_connected_online(&self.hypergraph, s)
    }

    /// The adjoin-graph view (single shared index set).
    pub fn adjoin(&self) -> AdjoinGraph {
        AdjoinGraph::from_hypergraph(&self.hypergraph)
    }

    /// The clique-expansion graph over hypernodes.
    pub fn clique_expansion(&self) -> nwgraph::Csr {
        nwhy_core::clique::clique_expansion(&self.hypergraph)
    }

    /// The dual session (`hyperedges ⇄ hypernodes`).
    pub fn dual(&self) -> NWHypergraph {
        NWHypergraph {
            hypergraph: self.hypergraph.dual(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Listing 5's exact toy input.
    fn listing5() -> NWHypergraph {
        let col = [0, 0, 0, 1, 1, 1];
        let row = [0, 1, 2, 0, 1, 2];
        NWHypergraph::new(&row, &col)
    }

    #[test]
    fn listing5_session_flow() {
        let hg = listing5();
        assert_eq!(hg.num_hyperedges(), 2);
        assert_eq!(hg.num_hypernodes(), 3);

        // s2lg = hg.s_linegraph(s=2, edges=True)
        let s2lg = hg.s_linegraph(2, true);
        // tmp = s2lg.is_s_connected()
        assert!(s2lg.is_s_connected());
        // sn = s2lg.s_neighbors(v=0)
        assert_eq!(s2lg.s_neighbors(0), &[1]);
        // sd = s2lg.s_degree(v=0)
        assert_eq!(s2lg.s_degree(0), 1);
        // scc = s2lg.s_connected_components()
        assert_eq!(s2lg.s_connected_components(), vec![0, 0]);
        // sdist = s2lg.s_distance(src=0, dest=1)
        assert_eq!(s2lg.s_distance(0, 1), Some(1));
        // sp = s2lg.s_path(src=0, dest=1)
        assert_eq!(s2lg.s_path(0, 1), Some(vec![0, 1]));
        // sbc = s2lg.s_betweenness_centrality(normalized=True)
        assert_eq!(s2lg.s_betweenness_centrality(true), vec![0.0, 0.0]);
        // sc / shc / se with v=None
        assert_eq!(s2lg.s_closeness_centrality(None).len(), 2);
        assert_eq!(s2lg.s_harmonic_closeness_centrality(None), vec![1.0, 1.0]);
        assert_eq!(s2lg.s_eccentricity(None), vec![1, 1]);
    }

    #[test]
    fn edges_false_gives_clique_side() {
        let hg = listing5();
        // 1-clique graph over hypernodes = clique expansion: K3
        let s1cg = hg.s_linegraph(1, false);
        assert_eq!(s1cg.num_vertices(), 3);
        for v in 0..3u32 {
            assert_eq!(s1cg.s_degree(v), 2);
        }
        let ce = hg.clique_expansion();
        assert_eq!(s1cg.graph(), &ce);
    }

    #[test]
    fn ensemble_linegraphs_match_individual() {
        let hg = NWHypergraph::from_hypergraph(nwhy_core::fixtures::paper_hypergraph());
        let many = hg.s_linegraphs(&[1, 2, 3], true);
        for (lg, s) in many.iter().zip([1usize, 2, 3]) {
            let single = hg.s_linegraph(s, true);
            assert_eq!(lg.graph(), single.graph(), "s={s}");
            assert_eq!(lg.s(), s);
        }
    }

    #[test]
    fn toplexes_and_adjoin() {
        let hg = NWHypergraph::from_hypergraph(nwhy_core::fixtures::nested_hypergraph());
        assert_eq!(hg.toplexes(), vec![0, 3]);
        let a = hg.adjoin();
        assert_eq!(a.num_vertices(), hg.num_hyperedges() + hg.num_hypernodes());
    }

    #[test]
    fn duplicate_incidences_collapse() {
        let hg = NWHypergraph::new(&[0, 0, 1], &[0, 0, 0]);
        assert_eq!(hg.hypergraph().num_incidences(), 2);
    }

    #[test]
    fn dual_swaps() {
        let hg = listing5();
        let d = hg.dual();
        assert_eq!(d.num_hyperedges(), 3);
        assert_eq!(d.num_hypernodes(), 2);
        assert_eq!(d.dual(), hg);
    }

    #[test]
    fn empty_session() {
        let hg = NWHypergraph::new(&[], &[]);
        assert_eq!(hg.num_hyperedges(), 0);
        assert!(hg.toplexes().is_empty());
        assert_eq!(hg.stats().num_incidences, 0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_arrays_rejected() {
        NWHypergraph::new(&[0, 1], &[0]);
    }

    #[test]
    fn weighted_session_exposes_weights() {
        // Listing 5 passes a weight array alongside row/col
        let col = [0u32, 0, 0, 1, 1, 1];
        let row = [0u32, 1, 2, 0, 1, 2];
        let weight = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let hg = NWHypergraph::with_weights(&row, &col, &weight);
        assert!(hg.hypergraph().is_weighted());
        let e0: Vec<(u32, f64)> = hg.hypergraph().edges().weighted_neighbors(0).collect();
        assert_eq!(e0, vec![(0, 1.0), (1, 2.0), (2, 3.0)]);
        // weights don't change any Listing 5 query
        let unweighted = NWHypergraph::new(&row, &col);
        assert_eq!(
            hg.s_linegraph(2, true).s_connected_components(),
            unweighted.s_linegraph(2, true).s_connected_components()
        );
    }

    #[test]
    #[should_panic(expected = "row/weight length mismatch")]
    fn weighted_mismatch_rejected() {
        NWHypergraph::with_weights(&[0], &[0], &[1.0, 2.0]);
    }

    #[test]
    fn extended_session_surface() {
        let hg = NWHypergraph::from_hypergraph(nwhy_core::fixtures::paper_hypergraph());
        // weighted line graph
        let w = hg.weighted_s_linegraph(1);
        assert_eq!(w.s_overlap(0, 3), Some(3));
        // (k,l)-core
        let core = hg.kl_core(1, 1);
        assert_eq!(core.num_edges(), 4);
        // toplex restriction on a nested hypergraph shrinks it
        let nested = NWHypergraph::from_hypergraph(nwhy_core::fixtures::nested_hypergraph());
        let (simplified, kept) = nested.restrict_to_toplexes();
        assert_eq!(kept, vec![0, 3]);
        assert_eq!(simplified.num_hyperedges(), 2);
    }
}
