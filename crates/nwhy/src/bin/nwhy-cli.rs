//! `nwhy-cli` — a command-line front end for the framework.
//!
//! ```text
//! nwhy-cli stats   <file> [--run bfs|cc|sline [--s S]]
//!                                              Table I-style statistics,
//!                                              optionally followed by one
//!                                              traversal/build + counters
//! nwhy-cli cc      <file> [--algo A]           hypergraph components
//!                  A ∈ hyper | adjoin | adjoin-lp | hygra   (default hyper)
//! nwhy-cli bfs     <file> --source E [--algo A]
//!                  A ∈ hyper | hyper-bu | adjoin | hygra    (default adjoin)
//! nwhy-cli sline   <file> --s S [--kernel K] [--overlap O] [--relabel R]
//!                  [--out FILE]
//!                  K ∈ auto | naive | intersection | hashmap | queue1 |
//!                      queue2 | pairsort   (default hashmap; `auto` asks
//!                      the planner; `--algo` is accepted as an alias)
//!                  O ∈ adaptive | merge | gallop | bitset   (overlap path)
//!                  R ∈ none | asc | desc    (degree relabeling)
//! nwhy-cli check   <file> [--s S]         validate structural invariants
//! nwhy-cli toplex  <file>
//! nwhy-cli scomp   <file> --s S           online s-connected components
//! nwhy-cli kcore   <file> --k K --l L     (k,l)-core sizes
//! nwhy-cli pagerank <file> [--damping D] [--top N]
//! nwhy-cli gen     <profile> [--scale N] [--seed S] --out FILE
//! nwhy-cli pack    <in> <out>             compress into NWHYPAK1 on-disk form
//! nwhy-cli info    <file>                 inspect a packed image (no decode)
//! nwhy-cli convert <in> <out>
//! nwhy-cli flightrec <trace.json>         inspect a flight-recorder dump
//! ```
//!
//! Every analysis subcommand accepts a packed `.nwhypak` input and the
//! backend flags:
//!
//! ```text
//! --mmap      serve the packed image zero-copy via mmap (forces packed open)
//! --no-mmap   read the packed image into an owned buffer (pure-safe path)
//! ```
//!
//! Kernels that are generic over `HyperAdjacency` (s-line construction,
//! hypergraph BFS/CC, online s-components) run straight off the packed
//! image; the rest materialize the pointer-based form first.
//!
//! Every subcommand additionally accepts the observability flags
//! (no-ops unless built with the default `obs` feature):
//!
//! ```text
//! --metrics[=text|json|prom]  print the snapshot on exit (`prom` renders
//!                             Prometheus text exposition for scraping)
//! --metrics-out FILE      write the snapshot there instead of stdout (keeps
//!                         the scrape document free of the report table)
//! --trace-out FILE        write a Chrome trace_event JSON (chrome://tracing)
//! --flight-out FILE       dump the flight-recorder ring on exit (same format)
//! --anomaly-us N          a span slower than N µs dumps the ring immediately
//!                         (to --flight-out's path, default nwhy-flight.json)
//! ```
//!
//! Formats are inferred from extensions: `.mtx`/`.mm` Matrix Market,
//! `.tsv` KONECT bipartite (node edge), `.hgr`/`.txt` hyperedge list,
//! `.bin` binary, `.nwhypak` compressed on-disk image.

// lint: unit tests sit above `main` for proximity to the helpers they cover
#![allow(clippy::items_after_test_module)]

use nwhy::core::algorithms::{
    adjoin_bfs, adjoin_cc_afforest, adjoin_cc_label_propagation, hyper_bfs_bottom_up,
    hyper_bfs_generic, hyper_bfs_top_down, hyper_cc, hyper_cc_generic, toplexes,
};
use nwhy::core::{
    AdjoinGraph, Algorithm, HyperedgeId, Hypergraph, OverlapPolicy, Relabel, SLineBuilder,
};
use nwhy::store::{Backend, CompressedHypergraph};
use std::fs::File;
use std::io::{BufReader, BufWriter, Write};
use std::path::Path;
use std::process::ExitCode;

/// Typed CLI failure: the variant decides the process exit code, so
/// scripts can distinguish misuse from environment failures from data
/// that violates the framework's invariants.
///
/// ```text
/// 2  usage      bad flags/arguments (also: unknown subcommand, --help)
/// 3  io         file system or format errors on inputs/outputs
/// 4  invariant  the data failed a structural check or query contract
/// ```
#[derive(Debug)]
enum CliError {
    /// Bad invocation: missing/unknown arguments, malformed flag values.
    Usage(String),
    /// Environment failure: open/read/parse/write on input or output.
    Io(String),
    /// The hypergraph (or a query against it) violated a contract.
    Invariant(String),
}

impl CliError {
    fn usage(msg: impl Into<String>) -> CliError {
        CliError::Usage(msg.into())
    }
    fn io(msg: impl Into<String>) -> CliError {
        CliError::Io(msg.into())
    }
    fn invariant(msg: impl Into<String>) -> CliError {
        CliError::Invariant(msg.into())
    }
    fn exit_code(&self) -> u8 {
        match self {
            CliError::Usage(_) => 2,
            CliError::Io(_) => 3,
            CliError::Invariant(_) => 4,
        }
    }
    fn message(&self) -> &str {
        match self {
            CliError::Usage(m) | CliError::Io(m) | CliError::Invariant(m) => m,
        }
    }
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.message())
    }
}

type CliResult<T = ()> = Result<T, CliError>;

fn usage() -> ! {
    eprintln!(
        "usage: nwhy-cli <stats|cc|bfs|sline|check|toplex|scomp|kcore|pagerank|gen|pack|info|\
         convert|flightrec> ... (see --help / crate docs)"
    );
    std::process::exit(2);
}

/// Minimal flag parser: positionals + `--key value` / `--key=value`
/// pairs. A `--`-prefixed token is never consumed as the value of the
/// preceding flag, so boolean-ish flags (`--metrics`) compose with
/// whatever follows.
struct Args {
    positional: Vec<String>,
    flags: Vec<(String, String)>,
}

impl Args {
    fn parse(raw: &[String]) -> Args {
        let mut positional = Vec::new();
        let mut flags = Vec::new();
        let mut it = raw.iter().peekable();
        while let Some(a) = it.next() {
            if let Some(key) = a.strip_prefix("--") {
                if let Some((k, v)) = key.split_once('=') {
                    flags.push((k.to_string(), v.to_string()));
                } else {
                    let val = match it.peek() {
                        Some(next) if !next.starts_with("--") => {
                            it.next().cloned().unwrap_or_default()
                        }
                        _ => String::new(),
                    };
                    flags.push((key.to_string(), val));
                }
            } else {
                positional.push(a.clone());
            }
        }
        Args { positional, flags }
    }

    fn flag(&self, key: &str) -> Option<&str> {
        self.flags
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

fn load(path: &str) -> CliResult<Hypergraph> {
    let lower = path.to_ascii_lowercase();
    if lower.ends_with(".nwhypak") {
        return nwhy::io::read_packed(Path::new(path))
            .map_err(|e| CliError::io(format!("{path}: {e}")));
    }
    let file = File::open(path).map_err(|e| CliError::io(format!("{path}: {e}")))?;
    let reader = BufReader::new(file);
    let result = if lower.ends_with(".mtx") || lower.ends_with(".mm") {
        nwhy::io::read_matrix_market(reader)
    } else if lower.ends_with(".tsv") {
        nwhy::io::read_bipartite_tsv(reader, nwhy::io::Orientation::NodeEdge)
    } else if lower.ends_with(".bin") {
        nwhy::io::read_binary(reader)
    } else {
        nwhy::io::read_hyperedge_list(reader)
    };
    result.map_err(|e| CliError::io(format!("{path}: {e}")))
}

fn save(path: &str, h: &Hypergraph) -> CliResult {
    let lower = path.to_ascii_lowercase();
    if lower.ends_with(".nwhypak") {
        return nwhy::io::write_packed_file(Path::new(path), h)
            .map(|_| ())
            .map_err(|e| CliError::io(format!("{path}: {e}")));
    }
    let file = File::create(path).map_err(|e| CliError::io(format!("{path}: {e}")))?;
    let mut writer = BufWriter::new(file);
    let result = if lower.ends_with(".mtx") || lower.ends_with(".mm") {
        nwhy::io::write_matrix_market(&mut writer, h)
    } else if lower.ends_with(".tsv") {
        nwhy::io::write_bipartite_tsv(&mut writer, h)
    } else if lower.ends_with(".bin") {
        nwhy::io::write_binary(&mut writer, h)
    } else {
        nwhy::io::write_hyperedge_list(&mut writer, h)
    };
    result.map_err(|e| CliError::io(format!("{path}: {e}")))?;
    writer
        .flush()
        .map_err(|e| CliError::io(format!("{path}: {e}")))
}

/// A loaded analysis input: either the pointer-based in-memory
/// bi-adjacency or a packed `NWHYPAK1` image served through
/// [`CompressedHypergraph`]. Kernels generic over `HyperAdjacency` run
/// on either variant directly; the rest call [`Input::into_memory`].
enum Input {
    Memory(Hypergraph),
    Packed(CompressedHypergraph),
}

impl Input {
    fn num_hyperedges(&self) -> usize {
        match self {
            Input::Memory(h) => h.num_hyperedges(),
            Input::Packed(c) => c.num_hyperedges(),
        }
    }

    /// Materializes the pointer-based representation (a no-op for
    /// in-memory inputs) for subcommands whose kernels are not generic
    /// over `HyperAdjacency`.
    fn into_memory(self) -> CliResult<Hypergraph> {
        match self {
            Input::Memory(h) => Ok(h),
            Input::Packed(c) => c
                .to_hypergraph()
                .map_err(|e| CliError::io(format!("packed image: {e}"))),
        }
    }
}

/// Resolves the storage backend from the `--mmap` / `--no-mmap` flags.
fn backend_choice(args: &Args) -> CliResult<Backend> {
    match (args.flag("mmap").is_some(), args.flag("no-mmap").is_some()) {
        (true, true) => Err(CliError::usage("--mmap conflicts with --no-mmap")),
        (true, false) => Ok(Backend::Mmap),
        (false, true) => Ok(Backend::Owned),
        (false, false) => Ok(Backend::Auto),
    }
}

/// Loads an analysis input. `.nwhypak` files — or any input when
/// `--mmap` explicitly asks for the zero-copy path — open as packed
/// images through the chosen backend; every other extension parses into
/// the in-memory form.
fn load_input(args: &Args, path: &str) -> CliResult<Input> {
    let packed = path.to_ascii_lowercase().ends_with(".nwhypak") || args.flag("mmap").is_some();
    if packed {
        let c = nwhy::io::open_packed(Path::new(path), backend_choice(args)?)
            .map_err(|e| CliError::io(format!("{path}: {e}")))?;
        Ok(Input::Packed(c))
    } else {
        Ok(Input::Memory(load(path)?))
    }
}

/// Table I statistics computed straight off a packed image: shape from
/// the header, degree extrema from per-row length prefixes — no payload
/// decode, no materialization.
fn packed_stats(c: &CompressedHypergraph) -> CliResult<nwhy::HypergraphStats> {
    let err = |e: nwhy::store::StoreError| CliError::io(format!("packed image: {e}"));
    let (ne, nv, nnz) = (c.num_hyperedges(), c.num_hypernodes(), c.num_incidences());
    let mut max_edge_degree = 0;
    for e in 0..ne {
        let len = c
            .edge_row_len(nwhy::core::ids::from_usize(e))
            .map_err(err)?;
        max_edge_degree = max_edge_degree.max(len);
    }
    let mut max_node_degree = 0;
    for v in 0..nv {
        let len = c
            .node_row_len(nwhy::core::ids::from_usize(v))
            .map_err(err)?;
        max_node_degree = max_node_degree.max(len);
    }
    Ok(nwhy::HypergraphStats {
        num_hypernodes: nv,
        num_hyperedges: ne,
        num_incidences: nnz,
        avg_node_degree: if nv == 0 { 0.0 } else { nnz as f64 / nv as f64 },
        avg_edge_degree: if ne == 0 { 0.0 } else { nnz as f64 / ne as f64 },
        max_node_degree,
        max_edge_degree,
    })
}

/// Parses a flag value strictly: a present-but-malformed value is a
/// usage error, never a silent fallback to the default.
fn parse_flag<T: std::str::FromStr>(args: &Args, cmd: &str, key: &str, default: T) -> CliResult<T> {
    match args.flag(key) {
        None => Ok(default),
        Some(raw) => raw
            .parse()
            .map_err(|_| CliError::usage(format!("{cmd}: malformed --{key} value `{raw}`"))),
    }
}

fn cmd_stats(args: &Args) -> CliResult {
    let path = args
        .positional
        .first()
        .ok_or_else(|| CliError::usage("stats: missing <file>"))?;
    let input = load_input(args, path)?;
    let s = match &input {
        Input::Memory(h) => h.stats(),
        Input::Packed(c) => packed_stats(c)?,
    };
    println!("file:            {path}");
    if let Input::Packed(c) = &input {
        println!(
            "backend:         packed NWHYPAK1 via {} ({:.3} bytes/incidence)",
            if c.is_mapped() {
                "mmap"
            } else {
                "owned buffer"
            },
            c.stats().bytes_per_incidence()
        );
    }
    println!("hypernodes |V|:  {}", s.num_hypernodes);
    println!("hyperedges |E|:  {}", s.num_hyperedges);
    println!("incidences:      {}", s.num_incidences);
    println!("avg node degree: {:.3}", s.avg_node_degree);
    println!("avg edge size:   {:.3}", s.avg_edge_degree);
    println!("max node degree: {}", s.max_node_degree);
    println!("max edge size:   {}", s.max_edge_degree);
    if let Some(run) = args.flag("run") {
        if input.num_hyperedges() == 0 {
            return Err(CliError::invariant(
                "stats: --run needs a non-empty hypergraph",
            ));
        }
        match run {
            "bfs" => {
                let reached = match &input {
                    Input::Memory(h) => {
                        let r = nwhy::hygra::bfs::hygra_bfs_with_mode(
                            h,
                            0,
                            nwhy::hygra::engine::Mode::Auto,
                        );
                        count_finite(&r.edge_levels)
                    }
                    Input::Packed(c) => hyper_bfs_generic(c, 0).edges_reached(),
                };
                println!("ran bfs from hyperedge 0: reached {reached} hyperedges");
            }
            "cc" => {
                let n = match &input {
                    Input::Memory(h) => nwhy::hygra::hygra_cc(h).num_components(),
                    Input::Packed(c) => hyper_cc_generic(c).num_components(),
                };
                println!("ran cc: {n} components");
            }
            "sline" => {
                let s: usize = parse_flag(args, "stats", "s", 2)?;
                let pairs = match &input {
                    Input::Memory(h) => SLineBuilder::new(h).s(s).edges(),
                    Input::Packed(c) => SLineBuilder::new(c).s(s).edges(),
                };
                println!("ran sline (s={s}): {} line-graph edges", pairs.len());
            }
            other => {
                return Err(CliError::usage(format!(
                    "stats: unknown --run {other} (bfs|cc|sline)"
                )))
            }
        }
        let snap = nwhy::obs::snapshot();
        if snap.is_empty() {
            println!("(no counters recorded — build with the default `obs` feature)");
        } else {
            print!("{}", snap.to_text());
        }
    }
    Ok(())
}

fn cmd_cc(args: &Args) -> CliResult {
    let path = args
        .positional
        .first()
        .ok_or_else(|| CliError::usage("cc: missing <file>"))?;
    let algo = args.flag("algo").unwrap_or("hyper");
    let input = load_input(args, path)?;
    let n = match (input, algo) {
        // the label-propagation kernel is generic over `HyperAdjacency`,
        // so the default algorithm never materializes a packed input
        (Input::Packed(c), "hyper") => hyper_cc_generic(&c).num_components(),
        (input, algo) => {
            let h = input.into_memory()?;
            match algo {
                "hyper" => hyper_cc(&h).num_components(),
                "adjoin" => adjoin_cc_afforest(&AdjoinGraph::from_hypergraph(&h)).num_components(),
                "adjoin-lp" => {
                    adjoin_cc_label_propagation(&AdjoinGraph::from_hypergraph(&h)).num_components()
                }
                "hygra" => nwhy::hygra::hygra_cc(&h).num_components(),
                other => return Err(CliError::usage(format!("cc: unknown --algo {other}"))),
            }
        }
    };
    println!("{algo}: {n} connected components");
    Ok(())
}

fn cmd_bfs(args: &Args) -> CliResult {
    let path = args
        .positional
        .first()
        .ok_or_else(|| CliError::usage("bfs: missing <file>"))?;
    let source: u32 = args
        .flag("source")
        .ok_or_else(|| CliError::usage("bfs: missing --source"))?
        .parse()
        .map_err(|_| CliError::usage("bfs: --source must be an integer"))?;
    let algo = args.flag("algo").unwrap_or("adjoin");
    let input = load_input(args, path)?;
    if source as usize >= input.num_hyperedges() {
        return Err(CliError::invariant(format!(
            "bfs: source {source} out of range ({} hyperedges)",
            input.num_hyperedges()
        )));
    }
    let (edges_reached, nodes_reached, max_level) = match (input, algo) {
        // the generic top-down kernel serves packed inputs zero-copy
        (Input::Packed(c), "hyper") => {
            let r = hyper_bfs_generic(&c, source);
            (
                r.edges_reached(),
                r.nodes_reached(),
                max_finite(&r.edge_levels),
            )
        }
        (input, algo) => {
            let h = input.into_memory()?;
            match algo {
                "hyper" => {
                    let r = hyper_bfs_top_down(&h, source);
                    (
                        r.edges_reached(),
                        r.nodes_reached(),
                        max_finite(&r.edge_levels),
                    )
                }
                "hyper-bu" => {
                    let r = hyper_bfs_bottom_up(&h, source);
                    (
                        r.edges_reached(),
                        r.nodes_reached(),
                        max_finite(&r.edge_levels),
                    )
                }
                "adjoin" => {
                    let r = adjoin_bfs(&AdjoinGraph::from_hypergraph(&h), HyperedgeId::new(source));
                    (
                        count_finite(&r.edge_levels),
                        count_finite(&r.node_levels),
                        max_finite(&r.edge_levels),
                    )
                }
                "hygra" => {
                    let r = nwhy::hygra::hygra_bfs(&h, source);
                    (
                        count_finite(&r.edge_levels),
                        count_finite(&r.node_levels),
                        max_finite(&r.edge_levels),
                    )
                }
                other => return Err(CliError::usage(format!("bfs: unknown --algo {other}"))),
            }
        }
    };
    println!(
        "{algo}: from hyperedge {source} reached {edges_reached} hyperedges and \
         {nodes_reached} hypernodes (max hyperedge level {max_level})"
    );
    Ok(())
}

fn count_finite(levels: &[u32]) -> usize {
    levels.iter().filter(|&&l| l != u32::MAX).count()
}

fn max_finite(levels: &[u32]) -> u32 {
    levels
        .iter()
        .copied()
        .filter(|&l| l != u32::MAX)
        .max()
        .unwrap_or(0)
}

fn cmd_sline(args: &Args) -> CliResult {
    let path = args
        .positional
        .first()
        .ok_or_else(|| CliError::usage("sline: missing <file>"))?;
    let s: usize = args
        .flag("s")
        .ok_or_else(|| CliError::usage("sline: missing --s"))?
        .parse()
        .map_err(|_| CliError::usage("sline: --s must be a positive integer"))?;
    if s == 0 {
        return Err(CliError::usage("sline: --s must be >= 1"));
    }
    // `--kernel` supersedes `--algo` (kept as an alias); `auto` hands
    // the choice to the planner
    let kernel = args
        .flag("kernel")
        .or_else(|| args.flag("algo"))
        .unwrap_or("hashmap");
    let algo = match kernel {
        "auto" => None,
        "naive" => Some(Algorithm::Naive),
        "intersection" => Some(Algorithm::Intersection),
        "hashmap" => Some(Algorithm::Hashmap),
        "queue1" => Some(Algorithm::QueueHashmap),
        "queue2" => Some(Algorithm::QueueIntersection),
        "pairsort" => Some(Algorithm::PairSort),
        other => return Err(CliError::usage(format!("sline: unknown --kernel {other}"))),
    };
    let overlap = match args.flag("overlap") {
        None => OverlapPolicy::default(),
        Some(name) => OverlapPolicy::parse(name)
            .ok_or_else(|| CliError::usage(format!("sline: unknown --overlap {name}")))?,
    };
    let relabel = match args.flag("relabel").unwrap_or("none") {
        "none" => Relabel::None,
        "asc" => Relabel::Ascending,
        "desc" => Relabel::Descending,
        other => return Err(CliError::usage(format!("sline: unknown --relabel {other}"))),
    };
    let input = load_input(args, path)?;
    let ne = input.num_hyperedges();
    let t = std::time::Instant::now();
    // `SLineBuilder` is generic over `HyperAdjacency`: packed inputs
    // feed the construction kernels straight off the on-disk image
    fn build<A: nwhy::core::HyperAdjacency + ?Sized>(
        h: &A,
        s: usize,
        algo: Option<Algorithm>,
        overlap: OverlapPolicy,
        relabel: Relabel,
    ) -> (Algorithm, Vec<(nwhy::core::Id, nwhy::core::Id)>) {
        let builder = SLineBuilder::new(h).s(s).overlap(overlap).relabel(relabel);
        // resolve `auto` once so the planner decision is both printed
        // and counted exactly one time
        let builder = match algo {
            Some(a) => builder.algorithm(a),
            None => {
                let builder = builder.auto();
                let chosen = builder.resolved_algorithm();
                builder.algorithm(chosen)
            }
        };
        (builder.resolved_algorithm(), builder.edges())
    }
    let (resolved, pairs) = match &input {
        Input::Memory(h) => build(h, s, algo, overlap, relabel),
        Input::Packed(c) => build(c, s, algo, overlap, relabel),
    };
    let secs = t.elapsed().as_secs_f64();
    if algo.is_none() {
        println!("auto: planner chose the {} kernel", resolved.name());
    }
    println!(
        "{}: {}-line graph has {} edges over {ne} hyperedges ({secs:.4}s)",
        resolved.name(),
        s,
        pairs.len(),
    );
    if let Some(out) = args.flag("out") {
        let file = File::create(out).map_err(|e| CliError::io(format!("{out}: {e}")))?;
        let mut w = BufWriter::new(file);
        for (a, b) in &pairs {
            writeln!(w, "{a}\t{b}").map_err(|e| CliError::io(format!("{out}: {e}")))?;
        }
        println!("wrote edge list to {out}");
    }
    Ok(())
}

/// `check`: run the `Validate` invariant suite on every representation
/// built from the input — the bi-adjacency, its dual view, the adjoin
/// graph, and (when `--s` is given) the weighted s-line CSR checked
/// against its source hypergraph. Reports each structure on its own
/// line; any violation fails the command.
fn cmd_check(args: &Args) -> CliResult {
    use nwhy::core::{DualView, SLineOutput, Validate};

    let path = args
        .positional
        .first()
        .ok_or_else(|| CliError::usage("check: missing <file>"))?;
    let input = load_input(args, path)?;
    let mut failures = 0usize;
    let mut report = |name: &str, result: Result<(), nwhy::InvariantViolation>| match result {
        Ok(()) => println!("  ok   {name}"),
        Err(e) => {
            failures += 1;
            println!("  FAIL {name}: {e}");
        }
    };

    println!("checking {path}");
    let h = match input {
        Input::Memory(h) => h,
        Input::Packed(c) => {
            report(
                "packed NWHYPAK1 image (codec, index, transpose)",
                c.validate(),
            );
            c.to_hypergraph()
                .map_err(|e| CliError::io(format!("packed image: {e}")))?
        }
    };
    report(
        "bi-adjacency (mutual indexing, CSR invariants)",
        h.validate(),
    );
    report("dual view", DualView::new(&h).validate());
    let a = nwhy::AdjoinGraph::from_hypergraph(&h);
    report("adjoin graph (bipartite, symmetric)", a.validate());
    if let Some(raw) = args.flag("s") {
        let s: usize = raw
            .parse()
            .map_err(|_| CliError::usage("check: --s must be a positive integer"))?;
        if s == 0 {
            return Err(CliError::usage("check: --s must be >= 1"));
        }
        let g = SLineBuilder::new(&h).s(s).weighted_csr();
        report(
            &format!("{s}-line CSR (symmetry, loops, weights)"),
            SLineOutput {
                csr: &g,
                repr: &h,
                s,
            }
            .validate(),
        );
    }
    if failures == 0 {
        println!("all invariants hold");
        Ok(())
    } else {
        Err(CliError::invariant(format!(
            "check: {failures} structure(s) violated invariants"
        )))
    }
}

fn cmd_toplex(args: &Args) -> CliResult {
    let path = args
        .positional
        .first()
        .ok_or_else(|| CliError::usage("toplex: missing <file>"))?;
    let h = load_input(args, path)?.into_memory()?;
    let t = toplexes(&h);
    println!(
        "{} of {} hyperedges are toplexes",
        t.len(),
        h.num_hyperedges()
    );
    let preview: Vec<u32> = t.iter().copied().take(20).collect();
    println!("first toplexes: {preview:?}");
    Ok(())
}

fn cmd_scomp(args: &Args) -> CliResult {
    let path = args
        .positional
        .first()
        .ok_or_else(|| CliError::usage("scomp: missing <file>"))?;
    let s: usize = args
        .flag("s")
        .ok_or_else(|| CliError::usage("scomp: missing --s"))?
        .parse()
        .map_err(|_| CliError::usage("scomp: --s must be a positive integer"))?;
    if s == 0 {
        return Err(CliError::usage("scomp: --s must be >= 1"));
    }
    let input = load_input(args, path)?;
    let ne = input.num_hyperedges();
    // the online kernel is generic over `HyperAdjacency`
    let labels = match &input {
        Input::Memory(h) => {
            nwhy::core::algorithms::s_components::s_connected_components_online(h, s)
        }
        Input::Packed(c) => {
            nwhy::core::algorithms::s_components::s_connected_components_online(c, s)
        }
    };
    let mut distinct = labels.clone();
    distinct.sort_unstable();
    distinct.dedup();
    let mut sizes = std::collections::HashMap::new();
    for &l in &labels {
        *sizes.entry(l).or_insert(0usize) += 1;
    }
    let largest = sizes.values().copied().max().unwrap_or(0);
    println!(
        "{} s-connected components at s={s} over {ne} hyperedges (largest: {largest})",
        distinct.len(),
    );
    Ok(())
}

fn cmd_kcore(args: &Args) -> CliResult {
    let path = args
        .positional
        .first()
        .ok_or_else(|| CliError::usage("kcore: missing <file>"))?;
    let k: usize = args
        .flag("k")
        .ok_or_else(|| CliError::usage("kcore: missing --k"))?
        .parse()
        .map_err(|_| CliError::usage("kcore: --k must be an integer"))?;
    let l: usize = args
        .flag("l")
        .ok_or_else(|| CliError::usage("kcore: missing --l"))?
        .parse()
        .map_err(|_| CliError::usage("kcore: --l must be an integer"))?;
    let h = load_input(args, path)?.into_memory()?;
    let core = nwhy::core::algorithms::kcore::kl_core(&h, k, l);
    println!(
        "({k},{l})-core: {} of {} hypernodes, {} of {} hyperedges survive",
        core.num_nodes(),
        h.num_hypernodes(),
        core.num_edges(),
        h.num_hyperedges()
    );
    Ok(())
}

fn cmd_pagerank(args: &Args) -> CliResult {
    let path = args
        .positional
        .first()
        .ok_or_else(|| CliError::usage("pagerank: missing <file>"))?;
    let damping: f64 = parse_flag(args, "pagerank", "damping", 0.85)?;
    let top: usize = parse_flag(args, "pagerank", "top", 10)?;
    let h = load_input(args, path)?.into_memory()?;
    let (pr, iters) = nwhy::hygra::pagerank::hygra_pagerank(
        &h,
        nwhy::hygra::pagerank::PageRankOptions {
            damping,
            ..Default::default()
        },
    );
    let mut ranked: Vec<(usize, f64)> = pr.iter().copied().enumerate().collect();
    ranked.sort_by(|a, b| b.1.total_cmp(&a.1));
    println!("hypergraph PageRank converged in {iters} iterations (damping {damping})");
    println!("top {} hypernodes:", top.min(ranked.len()));
    for &(v, score) in ranked.iter().take(top) {
        println!(
            "  node {v:>8}: {score:.6} (in {} hyperedges)",
            h.node_degree(nwhy::core::ids::from_usize(v))
        );
    }
    Ok(())
}

fn cmd_gen(args: &Args) -> CliResult {
    let name = args
        .positional
        .first()
        .ok_or_else(|| CliError::usage("gen: missing <profile>"))?;
    let profile = nwhy::gen::profiles::profile_by_name(name).ok_or_else(|| {
        CliError::usage(format!(
            "gen: unknown profile {name} (see `table1` for the list)"
        ))
    })?;
    let scale: usize = parse_flag(args, "gen", "scale", 2000)?;
    let seed: u64 = parse_flag(args, "gen", "seed", 42)?;
    let out = args
        .flag("out")
        .ok_or_else(|| CliError::usage("gen: missing --out"))?;
    let h = profile.generate(scale, seed);
    save(out, &h)?;
    let s = h.stats();
    println!(
        "generated {} twin at 1/{scale}: |V|={} |E|={} incidences={} → {out}",
        profile.name, s.num_hypernodes, s.num_hyperedges, s.num_incidences
    );
    Ok(())
}

fn cmd_convert(args: &Args) -> CliResult {
    let [input, output] = args.positional.as_slice() else {
        return Err(CliError::usage("convert: need <in> <out>"));
    };
    let h = load(input)?;
    save(output, &h)?;
    println!(
        "converted {input} → {output} ({} hyperedges, {} incidences)",
        h.num_hyperedges(),
        h.num_incidences()
    );
    Ok(())
}

/// `pack <in> <out>`: read any supported format and write the
/// compressed NWHYPAK1 on-disk image.
fn cmd_pack(args: &Args) -> CliResult {
    let [input, output] = args.positional.as_slice() else {
        return Err(CliError::usage("pack: need <in> <out>"));
    };
    let h = load(input)?;
    let bytes = nwhy::io::write_packed_file(Path::new(output), &h)
        .map_err(|e| CliError::io(format!("{output}: {e}")))?;
    let nnz = h.num_incidences();
    let bpi = if nnz == 0 {
        0.0
    } else {
        bytes as f64 / nnz as f64
    };
    println!(
        "packed {input} → {output}: {bytes} bytes over {nnz} incidences, \
         {bpi:.3} bytes/incidence (NWHYBIN1 stores 8.000)"
    );
    Ok(())
}

/// `info <file>`: header shape, per-section byte sizes, and an integrity
/// check of a packed image — without materializing the hypergraph.
fn cmd_info(args: &Args) -> CliResult {
    let path = args
        .positional
        .first()
        .ok_or_else(|| CliError::usage("info: missing <file>"))?;
    let c = nwhy::io::open_packed(Path::new(path), backend_choice(args)?)
        .map_err(|e| CliError::io(format!("{path}: {e}")))?;
    let s = c.stats();
    println!("file:             {path}");
    println!("format:           NWHYPAK1 v{}", nwhy::store::VERSION);
    println!(
        "backend:          {}",
        if c.is_mapped() {
            "mmap (zero-copy)"
        } else {
            "owned buffer"
        }
    );
    println!("hyperedges |E|:   {}", c.num_hyperedges());
    println!("hypernodes |V|:   {}", c.num_hypernodes());
    println!("incidences:       {}", c.num_incidences());
    println!("weighted:         {}", c.is_weighted());
    println!("total bytes:      {}", s.total_bytes);
    println!("  index bytes:    {}", s.index_bytes);
    println!("  payload bytes:  {}", s.payload_bytes);
    println!("  weights bytes:  {}", s.weights_bytes);
    println!(
        "bytes/incidence:  {:.3} (NWHYBIN1: 8.000)",
        s.bytes_per_incidence()
    );
    c.check_integrity()
        .map_err(|e| CliError::invariant(format!("{path}: integrity check failed: {e}")))?;
    println!("integrity:        ok");
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn to_vec(raw: &[&str]) -> Vec<String> {
        raw.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_positionals_and_flags() {
        let args = Args::parse(&to_vec(&["file.mtx", "--s", "3", "--algo", "queue1"]));
        assert_eq!(args.positional, vec!["file.mtx"]);
        assert_eq!(args.flag("s"), Some("3"));
        assert_eq!(args.flag("algo"), Some("queue1"));
        assert_eq!(args.flag("missing"), None);
    }

    #[test]
    fn flag_without_value_is_empty() {
        let args = Args::parse(&to_vec(&["--verbose"]));
        assert_eq!(args.flag("verbose"), Some(""));
    }

    #[test]
    fn equals_syntax_splits_key_and_value() {
        let args = Args::parse(&to_vec(&["--metrics=json", "--s=3"]));
        assert_eq!(args.flag("metrics"), Some("json"));
        assert_eq!(args.flag("s"), Some("3"));
    }

    #[test]
    fn bare_flag_does_not_consume_following_flag() {
        let args = Args::parse(&to_vec(&["--metrics", "--trace-out", "t.json"]));
        assert_eq!(args.flag("metrics"), Some(""));
        assert_eq!(args.flag("trace-out"), Some("t.json"));
    }

    #[test]
    fn interleaved_order() {
        let args = Args::parse(&to_vec(&["--k", "2", "in.bin", "--l", "5"]));
        assert_eq!(args.positional, vec!["in.bin"]);
        assert_eq!(args.flag("k"), Some("2"));
        assert_eq!(args.flag("l"), Some("5"));
    }

    #[test]
    fn helpers_count_and_max_levels() {
        assert_eq!(count_finite(&[0, u32::MAX, 3]), 2);
        assert_eq!(max_finite(&[0, u32::MAX, 3]), 3);
        assert_eq!(max_finite(&[u32::MAX]), 0);
    }

    #[test]
    fn load_rejects_missing_file() {
        assert!(load("/nonexistent/nwhy-test.mtx").is_err());
    }

    #[test]
    fn save_load_roundtrip_all_extensions() {
        let h = nwhy::core::fixtures::paper_hypergraph();
        let dir = std::env::temp_dir();
        for ext in ["mtx", "tsv", "bin", "hgr", "nwhypak"] {
            let path = dir.join(format!("nwhy_cli_test.{ext}"));
            let path = path.to_str().unwrap();
            save(path, &h).unwrap();
            let h2 = load(path).unwrap();
            assert_eq!(h, h2, "{ext}");
            let _ = std::fs::remove_file(path);
        }
    }

    #[test]
    fn backend_flags_conflict() {
        let args = Args::parse(&to_vec(&["--mmap", "--no-mmap"]));
        assert!(backend_choice(&args).is_err());
        assert!(matches!(
            backend_choice(&Args::parse(&to_vec(&["--mmap"]))),
            Ok(Backend::Mmap)
        ));
        assert!(matches!(
            backend_choice(&Args::parse(&to_vec(&["--no-mmap"]))),
            Ok(Backend::Owned)
        ));
        assert!(matches!(
            backend_choice(&Args::parse(&to_vec(&[]))),
            Ok(Backend::Auto)
        ));
    }

    #[test]
    fn load_input_dispatches_on_extension_and_flags() {
        let h = nwhy::core::fixtures::paper_hypergraph();
        let dir = std::env::temp_dir();
        let pak = dir.join(format!("nwhy_cli_input_{}.nwhypak", std::process::id()));
        let hgr = dir.join(format!("nwhy_cli_input_{}.hgr", std::process::id()));
        save(pak.to_str().unwrap(), &h).unwrap();
        save(hgr.to_str().unwrap(), &h).unwrap();

        // extension dispatch: .nwhypak opens packed, .hgr parses in memory
        let args = Args::parse(&[]);
        let packed = load_input(&args, pak.to_str().unwrap()).unwrap();
        assert!(matches!(packed, Input::Packed(_)));
        assert_eq!(packed.num_hyperedges(), h.num_hyperedges());
        assert_eq!(packed.into_memory().unwrap(), h);
        let memory = load_input(&args, hgr.to_str().unwrap()).unwrap();
        assert!(matches!(memory, Input::Memory(_)));

        // --no-mmap keeps a packed input on the owned-buffer backend
        let owned = Args::parse(&to_vec(&["--no-mmap"]));
        if let Input::Packed(c) = load_input(&owned, pak.to_str().unwrap()).unwrap() {
            assert!(!c.is_mapped());
        } else {
            panic!("expected packed input");
        }

        let _ = std::fs::remove_file(&pak);
        let _ = std::fs::remove_file(&hgr);
    }

    #[test]
    fn metrics_mode_prom_is_accepted_and_unknown_rejected() {
        assert!(emit_observability(&Args::parse(&to_vec(&["--metrics=prom"]))).is_ok());
        assert!(matches!(
            emit_observability(&Args::parse(&to_vec(&["--metrics=xml"]))),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn metrics_out_writes_the_snapshot_to_a_file() {
        // an empty registry renders an empty document; close one span so
        // the file provably holds an exposition
        drop(nwhy::obs::span("test.metrics_out"));
        let out = std::env::temp_dir().join("nwhy-cli-test-metrics-out.prom");
        let out_str = out.to_str().unwrap();
        let args = to_vec(&["--metrics=prom", "--metrics-out", out_str]);
        assert!(emit_observability(&Args::parse(&args)).is_ok());
        let doc = std::fs::read_to_string(&out).unwrap();
        if nwhy::obs::enabled() {
            assert!(doc.contains("# TYPE"), "not a prom exposition: {doc:?}");
        } else {
            // obs compiled out: the no-op snapshot renders empty
            assert!(doc.is_empty(), "no-op build wrote samples: {doc:?}");
        }
        let _ = std::fs::remove_file(&out);
        assert!(matches!(
            emit_observability(&Args::parse(&to_vec(&["--metrics=prom", "--metrics-out="]))),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn flight_flags_validate() {
        assert!(configure_flight(&Args::parse(&[])).is_ok());
        assert!(matches!(
            configure_flight(&Args::parse(&to_vec(&["--anomaly-us", "soon"]))),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            emit_observability(&Args::parse(&to_vec(&["--flight-out="]))),
            Err(CliError::Usage(_))
        ));
        // valid threshold; leave the recorder unconfigured afterwards
        assert!(configure_flight(&Args::parse(&to_vec(&["--anomaly-us", "5000000"]))).is_ok());
        nwhy::obs::flight_configure(None, None);
    }

    #[test]
    fn flightrec_inspects_a_dump_and_classifies_errors() {
        // missing positional is a usage error; unreadable/garbage files are io
        assert!(matches!(
            cmd_flightrec(&Args::parse(&[])),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            cmd_flightrec(&Args::parse(&to_vec(&["/nonexistent/f.json"]))),
            Err(CliError::Io(_))
        ));
        let dir = std::env::temp_dir();
        let path = dir.join(format!("nwhy_cli_flightrec_{}.json", std::process::id()));
        std::fs::write(&path, "not json").unwrap();
        assert!(matches!(
            cmd_flightrec(&Args::parse(&to_vec(&[path.to_str().unwrap()]))),
            Err(CliError::Io(_))
        ));
        // a well-formed dump (the shapes render_chrome emits) is accepted
        std::fs::write(
            &path,
            "{\"traceEvents\":[\
             {\"name\":\"cli.stats\",\"ph\":\"X\",\"ts\":0,\"dur\":12,\"pid\":0,\
              \"tid\":7,\"args\":{\"req\":1}},\
             {\"name\":\"cli.stats\",\"ph\":\"i\",\"s\":\"t\",\"ts\":0,\"pid\":0,\
              \"tid\":7,\"args\":{\"req\":1}},\
             {\"name\":\"bfs.rounds\",\"ph\":\"C\",\"ts\":3,\"pid\":0,\"tid\":7,\
              \"args\":{\"req\":1,\"delta\":4}}]}",
        )
        .unwrap();
        assert!(cmd_flightrec(&Args::parse(&to_vec(&[path.to_str().unwrap()]))).is_ok());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn cli_error_exit_codes_are_distinct() {
        assert_eq!(CliError::usage("u").exit_code(), 2);
        assert_eq!(CliError::io("i").exit_code(), 3);
        assert_eq!(CliError::invariant("v").exit_code(), 4);
        assert_eq!(CliError::usage("msg").to_string(), "msg");
    }

    #[test]
    fn errors_classify_by_cause() {
        // bad flags are usage errors
        let conflict = backend_choice(&Args::parse(&to_vec(&["--mmap", "--no-mmap"])));
        assert!(matches!(conflict, Err(CliError::Usage(_))));
        let args = Args::parse(&to_vec(&["--top", "NaNbutworse"]));
        assert!(matches!(
            parse_flag::<usize>(&args, "pagerank", "top", 10),
            Err(CliError::Usage(_))
        ));
        // a malformed value never falls back to the default silently
        assert_eq!(
            parse_flag::<usize>(&Args::parse(&[]), "x", "top", 10).unwrap(),
            10
        );
        // missing files are io errors
        assert!(matches!(
            load("/nonexistent/nwhy-test.mtx"),
            Err(CliError::Io(_))
        ));
        // missing positional is a usage error
        assert!(matches!(
            cmd_stats(&Args::parse(&[])),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn packed_stats_matches_in_memory_stats() {
        let h = nwhy::core::fixtures::paper_hypergraph();
        let c = CompressedHypergraph::from_bytes(nwhy::store::pack_hypergraph(&h)).unwrap();
        let from_packed = packed_stats(&c).unwrap();
        let from_memory = h.stats();
        assert_eq!(from_packed.num_hyperedges, from_memory.num_hyperedges);
        assert_eq!(from_packed.num_hypernodes, from_memory.num_hypernodes);
        assert_eq!(from_packed.num_incidences, from_memory.num_incidences);
        assert_eq!(from_packed.max_edge_degree, from_memory.max_edge_degree);
        assert_eq!(from_packed.max_node_degree, from_memory.max_node_degree);
    }
}

/// The root span label for a subcommand (`&'static str` because span
/// names are interned for the lifetime of the process).
fn span_name(cmd: &str) -> &'static str {
    match cmd {
        "stats" => "cli.stats",
        "cc" => "cli.cc",
        "bfs" => "cli.bfs",
        "sline" => "cli.sline",
        "check" => "cli.check",
        "toplex" => "cli.toplex",
        "scomp" => "cli.scomp",
        "kcore" => "cli.kcore",
        "pagerank" => "cli.pagerank",
        "gen" => "cli.gen",
        "pack" => "cli.pack",
        "info" => "cli.info",
        "convert" => "cli.convert",
        "flightrec" => "cli.flightrec",
        _ => "cli",
    }
}

/// Applies `--anomaly-us N` / `--flight-out FILE` *before* the
/// subcommand runs: a span closing slower than N µs dumps the flight
/// ring to FILE (default `nwhy-flight.json`) at the moment of the
/// anomaly, so the events leading up to it survive even if the process
/// later crashes.
fn configure_flight(args: &Args) -> CliResult {
    let anomaly = match args.flag("anomaly-us") {
        None => None,
        Some(raw) => Some(
            raw.parse::<u64>()
                .map_err(|_| CliError::usage(format!("malformed --anomaly-us value `{raw}`")))?,
        ),
    };
    let flight_out = args.flag("flight-out").filter(|p| !p.is_empty());
    if anomaly.is_some() || flight_out.is_some() {
        let path = flight_out.unwrap_or("nwhy-flight.json");
        nwhy::obs::flight_configure(anomaly, Some(Path::new(path)));
    }
    Ok(())
}

/// Handles the global `--metrics[=text|json|prom]` (+ `--metrics-out
/// FILE`), `--trace-out FILE` and `--flight-out FILE` flags after the
/// subcommand finished (so its root span is closed and included in the
/// snapshot).
fn emit_observability(args: &Args) -> CliResult {
    if let Some(mode) = args.flag("metrics") {
        let snap = nwhy::obs::snapshot();
        let rendered = match mode {
            "" | "text" => snap.to_text(),
            "json" => {
                let mut doc = snap.to_json();
                doc.push('\n');
                doc
            }
            "prom" => nwhy::obs::render_prometheus(&snap),
            other => {
                return Err(CliError::usage(format!(
                    "unknown --metrics mode {other} (text|json|prom)"
                )))
            }
        };
        match args.flag("metrics-out") {
            // The subcommand's own report shares stdout, so scrape
            // consumers (CI's check-prom) read from a file instead.
            Some("") => return Err(CliError::usage("--metrics-out needs a file path")),
            Some(path) => {
                std::fs::write(path, rendered).map_err(|e| CliError::io(format!("{path}: {e}")))?;
            }
            None => print!("{rendered}"),
        }
    }
    if let Some(path) = args.flag("trace-out") {
        if path.is_empty() {
            return Err(CliError::usage("--trace-out needs a file path"));
        }
        std::fs::write(path, nwhy::obs::chrome_trace())
            .map_err(|e| CliError::io(format!("{path}: {e}")))?;
    }
    if let Some(path) = args.flag("flight-out") {
        if path.is_empty() {
            return Err(CliError::usage("--flight-out needs a file path"));
        }
        std::fs::write(path, nwhy::obs::flight_chrome_trace(usize::MAX))
            .map_err(|e| CliError::io(format!("{path}: {e}")))?;
    }
    Ok(())
}

/// `flightrec <trace.json>` — inspect a flight-recorder dump (written
/// by `--flight-out` or the anomaly hook): per-request, per-span and
/// per-counter rollups over the Chrome `trace_event` document.
fn cmd_flightrec(args: &Args) -> CliResult {
    use nwhy::obs::json::{self, Value};
    use std::collections::BTreeMap;

    let path = args
        .positional
        .first()
        .ok_or_else(|| CliError::usage("flightrec: missing <trace.json>"))?;
    let text = std::fs::read_to_string(path).map_err(|e| CliError::io(format!("{path}: {e}")))?;
    let doc = json::parse(&text)
        .map_err(|e| CliError::io(format!("{path}: not a trace document: {e}")))?;
    let events = doc
        .get("traceEvents")
        .and_then(Value::as_array)
        .ok_or_else(|| CliError::io(format!("{path}: missing traceEvents array")))?;

    // (closes, total µs, max µs) per span name; (samples, delta sum) per
    // counter; (events, span µs) per request id; the slowest closes.
    let mut spans: BTreeMap<String, (u64, u64, u64)> = BTreeMap::new();
    let mut counters: BTreeMap<String, (u64, u64)> = BTreeMap::new();
    let mut requests: BTreeMap<u64, (u64, u64)> = BTreeMap::new();
    let mut slowest: Vec<(u64, String, u64)> = Vec::new(); // (dur, name, req)
    let mut opens = 0u64;
    for ev in events {
        let name = ev.get("name").and_then(Value::as_str).unwrap_or("?");
        let req = ev
            .get("args")
            .and_then(|a| a.get("req"))
            .and_then(Value::as_u64)
            .unwrap_or(0);
        let entry = requests.entry(req).or_insert((0, 0));
        entry.0 += 1;
        match ev.get("ph").and_then(Value::as_str) {
            Some("X") => {
                let dur = ev.get("dur").and_then(Value::as_u64).unwrap_or(0);
                let s = spans.entry(name.to_string()).or_insert((0, 0, 0));
                s.0 += 1;
                s.1 += dur;
                s.2 = s.2.max(dur);
                entry.1 += dur;
                slowest.push((dur, name.to_string(), req));
            }
            Some("i") => opens += 1,
            Some("C") => {
                let delta = ev
                    .get("args")
                    .and_then(|a| a.get("delta"))
                    .and_then(Value::as_u64)
                    .unwrap_or(0);
                let c = counters.entry(name.to_string()).or_insert((0, 0));
                c.0 += 1;
                c.1 += delta;
            }
            _ => {}
        }
    }

    println!(
        "{path}: {} events ({} span closes, {opens} span opens, {} counter samples)",
        events.len(),
        slowest.len(),
        counters.values().map(|&(n, _)| n).sum::<u64>()
    );
    println!("requests:");
    for (req, (n, span_us)) in &requests {
        let label = if *req == 0 { " (unattributed)" } else { "" };
        println!("  req {req}{label}: {n} events, {span_us} span µs");
    }
    if !spans.is_empty() {
        println!("spans:");
        for (name, (n, total, max)) in &spans {
            println!("  {name}: {n} closes, total {total} µs, max {max} µs");
        }
    }
    if !counters.is_empty() {
        println!("counters:");
        for (name, (n, sum)) in &counters {
            println!("  {name}: {n} samples, delta sum {sum}");
        }
    }
    slowest.sort_unstable_by(|a, b| b.cmp(a));
    if !slowest.is_empty() {
        println!("slowest spans:");
        for (dur, name, req) in slowest.iter().take(5) {
            println!("  {dur} µs  {name}  (req {req})");
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    if raw.is_empty() || raw[0] == "--help" || raw[0] == "-h" {
        usage();
    }
    let cmd = raw[0].as_str();
    let args = Args::parse(&raw[1..]);
    let result = configure_flight(&args).and_then(|()| {
        // Every invocation is one "request": CLI-thread spans and counter
        // deltas in the flight ring carry this id, so dumps from
        // overlapping runs (or embeddings that issue several requests per
        // process) stay attributable.
        let ctx = nwhy::obs::RequestCtx::new();
        let _guard = ctx.enter();
        let _span = nwhy::obs::span(span_name(cmd));
        match cmd {
            "stats" => cmd_stats(&args),
            "cc" => cmd_cc(&args),
            "bfs" => cmd_bfs(&args),
            "sline" => cmd_sline(&args),
            "check" => cmd_check(&args),
            "toplex" => cmd_toplex(&args),
            "scomp" => cmd_scomp(&args),
            "kcore" => cmd_kcore(&args),
            "pagerank" => cmd_pagerank(&args),
            "gen" => cmd_gen(&args),
            "pack" => cmd_pack(&args),
            "info" => cmd_info(&args),
            "convert" => cmd_convert(&args),
            "flightrec" => cmd_flightrec(&args),
            _ => {
                usage();
            }
        }
    });
    let result = result.and_then(|()| emit_observability(&args));
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(e.exit_code())
        }
    }
}
