//! `nwhy-bench` — shared harness utilities for regenerating the paper's
//! tables and figures.
//!
//! Binaries (one per experiment — see DESIGN.md's per-experiment index):
//!
//! | binary | regenerates |
//! |---|---|
//! | `table1` | Table I — dataset characteristics |
//! | `fig7_cc_scaling` | Fig. 7 — strong scaling of hypergraph CC |
//! | `fig8_bfs_scaling` | Fig. 8 — strong scaling of hypergraph BFS |
//! | `fig9_slinegraph` | Fig. 9 — s-line construction, normalized to Hashmap |
//!
//! Common environment knobs:
//!
//! - `NWHY_SCALE` — down-scale factor for the Table I twins
//!   (default 2000; the paper runs the real datasets).
//! - `NWHY_TRIALS` — timed repetitions per cell, minimum reported
//!   (default 3).
//! - `NWHY_MAX_THREADS` — top of the thread sweep (default: available
//!   CPUs). On a single-core host the sweep degenerates to `[1]`; set
//!   this to e.g. 8 to exercise the harness with oversubscribed pools.
//! - `NWHY_SEED` — generator seed (default 42).

#![forbid(unsafe_code)]

use nwhy_core::Hypergraph;
use nwhy_gen::profiles::{DatasetProfile, TABLE1};

/// Reads a `usize` knob from the environment.
pub fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Reads a `u64` knob from the environment.
pub fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// The harness-wide configuration assembled from the environment.
#[derive(Debug, Clone, Copy)]
pub struct HarnessConfig {
    /// Twin down-scale factor.
    pub scale: usize,
    /// Timed repetitions per cell (min is reported).
    pub trials: usize,
    /// Top of the thread sweep.
    pub max_threads: usize,
    /// Generator seed.
    pub seed: u64,
}

impl HarnessConfig {
    /// Reads `NWHY_SCALE`, `NWHY_TRIALS`, `NWHY_MAX_THREADS`, `NWHY_SEED`.
    pub fn from_env() -> Self {
        Self {
            scale: env_usize("NWHY_SCALE", 2000),
            trials: env_usize("NWHY_TRIALS", 3),
            max_threads: env_usize("NWHY_MAX_THREADS", nwhy_util::pool::max_threads()),
            seed: env_u64("NWHY_SEED", 42),
        }
    }

    /// The thread counts Figures 7–8 sweep.
    pub fn thread_counts(&self) -> Vec<usize> {
        nwhy_util::pool::thread_sweep(self.max_threads)
    }
}

/// Generates every Table I twin at the configured scale.
pub fn all_twins(cfg: &HarnessConfig) -> Vec<(&'static DatasetProfile, Hypergraph)> {
    TABLE1
        .iter()
        .map(|p| (p, p.generate(cfg.scale, cfg.seed)))
        .collect()
}

/// Times `f` `trials` times and returns the minimum seconds (the
/// statistic the GAP/Hygra-style harnesses report).
pub fn best_of<R>(trials: usize, mut f: impl FnMut() -> R) -> f64 {
    (0..trials.max(1))
        .map(|_| {
            let t = std::time::Instant::now();
            std::hint::black_box(f());
            t.elapsed().as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min)
}

/// Times `f` `trials` times and returns the median seconds (upper median
/// for even counts) — the statistic the `BENCH_*.json` emitters report.
pub fn median_of<R>(trials: usize, mut f: impl FnMut() -> R) -> f64 {
    let mut times: Vec<f64> = (0..trials.max(1))
        .map(|_| {
            let t = std::time::Instant::now();
            std::hint::black_box(f());
            t.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

/// One cell of a `BENCH_*.json` perf-trajectory file: median runtime plus
/// the kernel counters one run of the cell produced.
#[derive(Debug, Clone)]
pub struct BenchRecord {
    /// Which bench emitted this (`"slinegraph"`, `"traversal"`, …).
    pub bench: String,
    /// Dataset name.
    pub dataset: String,
    /// Algorithm name.
    pub algorithm: String,
    /// Overlap threshold, when the cell has one.
    pub s: Option<usize>,
    /// Timed repetitions behind the median.
    pub trials: usize,
    /// Median runtime in seconds.
    pub median_seconds: f64,
    /// `(counter name, value)` from one instrumented run; empty when the
    /// `obs` feature is off.
    pub counters: Vec<(String, u64)>,
}

impl ToJson for BenchRecord {
    fn to_json(&self) -> String {
        let s = match self.s {
            Some(s) => s.to_string(),
            None => "null".to_string(),
        };
        let counters: Vec<String> = self
            .counters
            .iter()
            .map(|(k, v)| format!("\"{}\": {v}", json_escape(k)))
            .collect();
        format!(
            "{{\"bench\": \"{}\", \"dataset\": \"{}\", \"algorithm\": \"{}\", \"s\": {s}, \
             \"trials\": {}, \"median_seconds\": {}, \"counters\": {{{}}}}}",
            json_escape(&self.bench),
            json_escape(&self.dataset),
            json_escape(&self.algorithm),
            self.trials,
            json_f64(self.median_seconds),
            counters.join(", ")
        )
    }
}

/// Runs one bench cell: a warm-up run with reset counters captures the
/// per-run kernel counter values, then `trials` timed runs produce the
/// median. Counter capture is outside the timed region, so the snapshot
/// cost never leaks into `median_seconds`.
pub fn bench_cell<R>(
    bench: &str,
    dataset: &str,
    algorithm: &str,
    s: Option<usize>,
    trials: usize,
    mut f: impl FnMut() -> R,
) -> BenchRecord {
    nwhy_obs::reset();
    std::hint::black_box(f());
    let counters: Vec<(String, u64)> = nwhy_obs::snapshot()
        .counters
        .into_iter()
        .map(|c| (c.name.to_string(), c.value))
        .collect();
    let median_seconds = median_of(trials, &mut f);
    BenchRecord {
        bench: bench.to_string(),
        dataset: dataset.to_string(),
        algorithm: algorithm.to_string(),
        s,
        trials,
        median_seconds,
        counters,
    }
}

/// Validates a `BENCH_*.json` document against the schema the emitters
/// produce (and CI's bench-smoke job checks): a non-empty array of
/// objects with string `bench`/`dataset`/`algorithm`, integer `trials`,
/// number `median_seconds` ≥ 0, `s` integer or null, and a `counters`
/// object with non-negative integer values.
pub fn validate_bench_json(text: &str) -> Result<(), String> {
    use nwhy_obs::json::{parse, Value};
    let doc = parse(text)?;
    let rows = doc.as_array().ok_or("top level must be an array")?;
    if rows.is_empty() {
        return Err("bench JSON must contain at least one record".into());
    }
    for (i, row) in rows.iter().enumerate() {
        for key in ["bench", "dataset", "algorithm"] {
            row.get(key)
                .and_then(Value::as_str)
                .ok_or_else(|| format!("row {i}: missing string field {key:?}"))?;
        }
        row.get("trials")
            .and_then(Value::as_u64)
            .ok_or_else(|| format!("row {i}: missing integer field \"trials\""))?;
        let secs = row
            .get("median_seconds")
            .and_then(Value::as_f64)
            .ok_or_else(|| format!("row {i}: missing number field \"median_seconds\""))?;
        if secs < 0.0 {
            return Err(format!("row {i}: median_seconds {secs} must be >= 0"));
        }
        match row.get("s") {
            Some(Value::Null) => {}
            Some(v) if v.as_u64().is_some() => {}
            _ => return Err(format!("row {i}: \"s\" must be an integer or null")),
        }
        match row.get("counters") {
            Some(Value::Object(m)) => {
                for (k, v) in m {
                    v.as_u64().ok_or_else(|| {
                        format!("row {i}: counter {k:?} must be a non-negative integer")
                    })?;
                }
            }
            _ => return Err(format!("row {i}: missing object field \"counters\"")),
        }
    }
    Ok(())
}

/// A value that knows how to render itself as a JSON object — the minimal
/// serialization contract the sidecar writer needs.
pub trait ToJson {
    fn to_json(&self) -> String;
}

/// Escapes a string for embedding in a JSON document.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f64` so it round-trips as a JSON number (JSON has no
/// Infinity/NaN; those degrade to null).
pub fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".to_string()
    }
}

/// One timed cell of a scaling figure, serialized into the JSON sidecar
/// so EXPERIMENTS.md can cite exact numbers.
#[derive(Debug, Clone)]
pub struct ScalingCell {
    /// Dataset name.
    pub dataset: String,
    /// Algorithm name.
    pub algorithm: String,
    /// Thread count.
    pub threads: usize,
    /// Best-of-trials runtime in seconds.
    pub seconds: f64,
}

impl ToJson for ScalingCell {
    fn to_json(&self) -> String {
        format!(
            "{{\"dataset\": \"{}\", \"algorithm\": \"{}\", \"threads\": {}, \"seconds\": {}}}",
            json_escape(&self.dataset),
            json_escape(&self.algorithm),
            self.threads,
            json_f64(self.seconds)
        )
    }
}

/// One timed cell of the Fig. 9 comparison.
#[derive(Debug, Clone)]
pub struct SLineCell {
    /// Dataset name.
    pub dataset: String,
    /// Construction algorithm.
    pub algorithm: String,
    /// Overlap threshold s.
    pub s: usize,
    /// Best configuration found (strategy × relabel).
    pub best_config: String,
    /// Best-of-configurations runtime in seconds.
    pub seconds: f64,
    /// Runtime normalized to the Hashmap algorithm's.
    pub relative_to_hashmap: f64,
}

impl ToJson for SLineCell {
    fn to_json(&self) -> String {
        format!(
            "{{\"dataset\": \"{}\", \"algorithm\": \"{}\", \"s\": {}, \"best_config\": \"{}\", \"seconds\": {}, \"relative_to_hashmap\": {}}}",
            json_escape(&self.dataset),
            json_escape(&self.algorithm),
            self.s,
            json_escape(&self.best_config),
            json_f64(self.seconds),
            json_f64(self.relative_to_hashmap)
        )
    }
}

/// Writes a JSON sidecar next to the printed table.
pub fn write_json<T: ToJson>(path: &str, rows: &[T]) {
    let mut s = String::from("[\n");
    for (i, row) in rows.iter().enumerate() {
        s.push_str("  ");
        s.push_str(&row.to_json());
        if i + 1 < rows.len() {
            s.push(',');
        }
        s.push('\n');
    }
    s.push(']');
    if let Err(e) = std::fs::write(path, s) {
        eprintln!("warning: could not write {path}: {e}");
    } else {
        eprintln!("(wrote {path})");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_parsing_defaults() {
        assert_eq!(env_usize("NWHY_DOES_NOT_EXIST", 7), 7);
        assert_eq!(env_u64("NWHY_DOES_NOT_EXIST", 9), 9);
    }

    #[test]
    fn config_thread_counts_start_at_one() {
        let cfg = HarnessConfig {
            scale: 1000,
            trials: 1,
            max_threads: 4,
            seed: 1,
        };
        assert_eq!(cfg.thread_counts(), vec![1, 2, 4]);
    }

    #[test]
    fn best_of_returns_finite_time() {
        let t = best_of(3, || (0..1000u64).sum::<u64>());
        assert!(t.is_finite() && t >= 0.0);
    }

    #[test]
    fn median_of_returns_finite_time() {
        let t = median_of(4, || (0..1000u64).sum::<u64>());
        assert!(t.is_finite() && t >= 0.0);
    }

    fn sample_record(s: Option<usize>) -> BenchRecord {
        BenchRecord {
            bench: "slinegraph".into(),
            dataset: "com-Orkut".into(),
            algorithm: "Hashmap".into(),
            s,
            trials: 5,
            median_seconds: 0.125,
            counters: vec![("sline.pairs_examined".into(), 42)],
        }
    }

    #[test]
    fn bench_record_json_validates() {
        let mut doc = String::from("[\n  ");
        doc.push_str(&sample_record(Some(2)).to_json());
        doc.push_str(",\n  ");
        doc.push_str(&sample_record(None).to_json());
        doc.push_str("\n]");
        validate_bench_json(&doc).unwrap();
    }

    #[test]
    fn bench_schema_rejects_malformed() {
        assert!(validate_bench_json("{}").is_err());
        assert!(validate_bench_json("[]").is_err());
        // missing counters object
        let bad = r#"[{"bench": "b", "dataset": "d", "algorithm": "a",
                       "s": null, "trials": 3, "median_seconds": 0.5}]"#;
        assert!(validate_bench_json(bad).is_err());
        // negative time
        let bad = r#"[{"bench": "b", "dataset": "d", "algorithm": "a",
                       "s": 1, "trials": 3, "median_seconds": -1.0, "counters": {}}]"#;
        assert!(validate_bench_json(bad).is_err());
        // non-integer counter value
        let bad = r#"[{"bench": "b", "dataset": "d", "algorithm": "a",
                       "s": 1, "trials": 3, "median_seconds": 1.0, "counters": {"x": 0.5}}]"#;
        assert!(validate_bench_json(bad).is_err());
    }

    #[test]
    fn bench_cell_captures_counters_and_time() {
        let rec = bench_cell("t", "d", "a", Some(1), 2, || {
            nwhy_obs::incr(nwhy_obs::Counter::SlinePairsExamined);
        });
        assert_eq!(rec.trials, 2);
        assert!(rec.median_seconds >= 0.0);
        if nwhy_obs::enabled() {
            assert!(rec
                .counters
                .iter()
                .any(|(k, v)| k == "sline.pairs_examined" && *v == 1));
        } else {
            assert!(rec.counters.is_empty());
        }
        let doc = format!("[{}]", rec.to_json());
        validate_bench_json(&doc).unwrap();
    }

    #[test]
    fn all_twins_produces_six() {
        let cfg = HarnessConfig {
            scale: 100_000,
            trials: 1,
            max_threads: 1,
            seed: 1,
        };
        let twins = all_twins(&cfg);
        assert_eq!(twins.len(), 6);
        for (p, h) in twins {
            assert!(h.num_hyperedges() >= 16, "{}", p.name);
        }
    }
}
