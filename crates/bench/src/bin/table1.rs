//! Regenerates **Table I** — input characteristics of the evaluation
//! datasets — for the synthetic twins, side by side with the paper's
//! published numbers for the real datasets.
//!
//! Run: `cargo run --release -p nwhy-bench --bin table1`
//! Knobs: `NWHY_SCALE` (default 2000), `NWHY_SEED`.

use nwhy_bench::{all_twins, HarnessConfig};

fn fmt_count(x: usize) -> String {
    if x >= 1_000_000 {
        format!("{:.1}M", x as f64 / 1e6)
    } else if x >= 1_000 {
        format!("{:.1}k", x as f64 / 1e3)
    } else {
        x.to_string()
    }
}

fn main() {
    let cfg = HarnessConfig::from_env();
    println!(
        "Table I twin datasets (scale 1/{}, seed {})\n",
        cfg.scale, cfg.seed
    );
    println!(
        "{:<12} {:<10} | {:>8} {:>8} {:>6} {:>6} {:>8} {:>8} | {:>30}",
        "dataset", "type", "|V|", "|E|", "d̄_v", "d̄_e", "Δ_v", "Δ_e", "paper (real dataset)"
    );
    println!("{}", "-".repeat(112));
    for (p, h) in all_twins(&cfg) {
        let s = h.stats();
        let r = &p.row;
        println!(
            "{:<12} {:<10} | {:>8} {:>8} {:>6.1} {:>6.1} {:>8} {:>8} | {:>8} {:>7} d̄v={:<4.0} d̄e={:<4.0}",
            p.name,
            r.kind,
            fmt_count(s.num_hypernodes),
            fmt_count(s.num_hyperedges),
            s.avg_node_degree,
            s.avg_edge_degree,
            fmt_count(s.max_node_degree),
            fmt_count(s.max_edge_degree),
            fmt_count(r.num_nodes),
            fmt_count(r.num_edges),
            r.avg_node_degree,
            r.avg_edge_degree,
        );
    }
    println!(
        "\nAll real-world twins keep the paper's skewed hyperedge degree \
         distribution; Rand1 is uniform (Δ_e = d̄_e = 10)."
    );

    println!("\nhyperedge-size histograms (log2 bins: 0, 1, 2-3, 4-7, 8-15, …):");
    for (p, h) in all_twins(&cfg) {
        let hist = h.edge_size_histogram();
        let cells: Vec<String> = hist.iter().map(|c| c.to_string()).collect();
        println!("  {:<12} [{}]", p.name, cells.join(", "));
    }
}
