//! Regenerates **Figure 8** — strong scaling of hypergraph breadth-first
//! search: AdjoinBFS (direction-optimizing) and HyperBFS (NWHy) vs
//! HygraBFS (top-down baseline), runtime vs thread count per Table I twin.
//!
//! As in the paper, the source is a high-degree hyperedge; on twins with
//! many components the traversal finishes quickly (the paper makes the
//! same observation about Orkut-group and Web).
//!
//! Run: `cargo run --release -p nwhy-bench --bin fig8_bfs_scaling`
//! Knobs: `NWHY_SCALE`, `NWHY_TRIALS`, `NWHY_MAX_THREADS`, `NWHY_SEED`.
//! Output: a runtime table per dataset + `fig8_results.json`.

use nwhy_bench::{all_twins, best_of, write_json, HarnessConfig, ScalingCell};
use nwhy_core::algorithms::{adjoin_bfs, hyper_bfs_top_down};
use nwhy_core::{AdjoinGraph, HyperedgeId};
use nwhy_util::pool::with_threads;

fn main() {
    let cfg = HarnessConfig::from_env();
    let threads = cfg.thread_counts();
    println!(
        "Figure 8: hypergraph BFS strong scaling (scale 1/{}, best of {} trials)",
        cfg.scale, cfg.trials
    );
    let mut rows: Vec<ScalingCell> = Vec::new();

    for (p, h) in all_twins(&cfg) {
        let adjoin = AdjoinGraph::from_hypergraph(&h);
        let source = (0..nwhy_core::ids::from_usize(h.num_hyperedges()))
            .max_by_key(|&e| h.edge_degree(e))
            .expect("twin has hyperedges");
        println!(
            "\n{} (source hyperedge {source}, degree {})",
            p.name,
            h.edge_degree(source)
        );
        println!(
            "{:>8} {:>14} {:>14} {:>14}",
            "threads", "AdjoinBFS [s]", "HyperBFS [s]", "HygraBFS [s]"
        );
        for &t in &threads {
            let t_adjoin = with_threads(t, || {
                best_of(cfg.trials, || adjoin_bfs(&adjoin, HyperedgeId::new(source)))
            });
            let t_hyper =
                with_threads(t, || best_of(cfg.trials, || hyper_bfs_top_down(&h, source)));
            let t_hygra = with_threads(t, || best_of(cfg.trials, || hygra::hygra_bfs(&h, source)));
            println!("{t:>8} {t_adjoin:>14.5} {t_hyper:>14.5} {t_hygra:>14.5}");
            for (alg, secs) in [
                ("AdjoinBFS", t_adjoin),
                ("HyperBFS", t_hyper),
                ("HygraBFS", t_hygra),
            ] {
                rows.push(ScalingCell {
                    dataset: p.name.to_string(),
                    algorithm: alg.to_string(),
                    threads: t,
                    seconds: secs,
                });
            }
        }
        // correctness cross-check once per dataset
        let a = adjoin_bfs(&adjoin, HyperedgeId::new(source));
        let b = hyper_bfs_top_down(&h, source);
        let c = hygra::hygra_bfs(&h, source);
        assert_eq!(
            a.edge_levels, b.edge_levels,
            "{}: adjoin vs bipartite",
            p.name
        );
        assert_eq!(b.edge_levels, c.edge_levels, "{}: NWHy vs Hygra", p.name);
        println!(
            "{:>8} reached {} hyperedges, max level {} (all algorithms agree)",
            "",
            b.edges_reached(),
            b.edge_levels
                .iter()
                .filter(|&&l| l != u32::MAX)
                .max()
                .unwrap_or(&0)
        );
    }

    write_json("fig8_results.json", &rows);
}
