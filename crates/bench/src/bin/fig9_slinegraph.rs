//! Regenerates **Figure 9** — runtime of the s-line-graph construction
//! algorithms relative to the Hashmap algorithm.
//!
//! As in §IV-D, every algorithm is run under blocked and cyclic
//! partitioning with relabel-by-degree off/ascending/descending, and only
//! the *fastest* configuration per algorithm is reported. Output is the
//! runtime normalized to Hashmap (Fig. 9's y-axis): bars near 1.0 for the
//! queue variants reproduce the paper's "queue-based algorithms perform
//! similarly to their non-queue versions" result.
//!
//! Run: `cargo run --release -p nwhy-bench --bin fig9_slinegraph`
//! Knobs: `NWHY_SCALE`, `NWHY_TRIALS`, `NWHY_SEED`,
//!        `NWHY_SVALUES` (comma list, default "1,2,4,8").
//! Output: a table per dataset + `fig9_results.json`.

use nwhy_bench::{all_twins, best_of, write_json, HarnessConfig, SLineCell};
use nwhy_core::{Algorithm, BuildOptions, Relabel, SLineBuilder};
use nwhy_util::partition::Strategy;

fn s_values() -> Vec<usize> {
    std::env::var("NWHY_SVALUES")
        .ok()
        .map(|v| {
            v.split(',')
                .filter_map(|t| t.trim().parse().ok())
                .filter(|&s| s >= 1)
                .collect()
        })
        .filter(|v: &Vec<usize>| !v.is_empty())
        .unwrap_or_else(|| vec![1, 2, 4, 8])
}

fn configs() -> Vec<(&'static str, BuildOptions)> {
    let mut out = Vec::new();
    for (sname, strategy) in [
        ("blocked", Strategy::Blocked { num_bins: 0 }),
        ("cyclic", Strategy::Cyclic { num_bins: 0 }),
    ] {
        for (rname, relabel) in [
            ("none", Relabel::None),
            ("asc", Relabel::Ascending),
            ("desc", Relabel::Descending),
        ] {
            out.push((
                Box::leak(format!("{sname}/{rname}").into_boxed_str()) as &'static str,
                BuildOptions { strategy, relabel },
            ));
        }
    }
    out
}

const ALGORITHMS: [Algorithm; 4] = [
    Algorithm::Hashmap,
    Algorithm::Intersection,
    Algorithm::QueueHashmap,
    Algorithm::QueueIntersection,
];

fn main() {
    let cfg = HarnessConfig::from_env();
    let svals = s_values();
    let configs = configs();
    println!(
        "Figure 9: s-line graph construction, best configuration per algorithm,\n\
         normalized to Hashmap (scale 1/{}, best of {} trials, s ∈ {svals:?})",
        cfg.scale, cfg.trials
    );
    let mut rows: Vec<SLineCell> = Vec::new();

    for (p, h) in all_twins(&cfg) {
        println!(
            "\n{} ({} hyperedges, {} incidences)",
            p.name,
            h.num_hyperedges(),
            h.num_incidences()
        );
        println!(
            "{:>4} {:>24} {:>24} {:>24} {:>24}",
            "s", "Hashmap", "Intersection", "Alg1 queue-hashmap", "Alg2 queue-intersect"
        );
        for &s in &svals {
            // correctness first: all four must produce the same edge set
            let reference = SLineBuilder::new(&h).s(s).edges();
            let mut best: Vec<(f64, &'static str)> = Vec::new();
            for algo in ALGORITHMS {
                let mut fastest = (f64::INFINITY, "");
                for (cname, opts) in &configs {
                    let secs = best_of(cfg.trials, || {
                        SLineBuilder::new(&h)
                            .s(s)
                            .algorithm(algo)
                            .options(opts)
                            .edges()
                    });
                    if secs < fastest.0 {
                        fastest = (secs, cname);
                    }
                }
                let got = SLineBuilder::new(&h).s(s).algorithm(algo).edges();
                assert_eq!(
                    got,
                    reference,
                    "{}: {} disagrees at s={s}",
                    p.name,
                    algo.name()
                );
                best.push(fastest);
            }
            let hashmap_time = best[0].0;
            print!("{s:>4}");
            for (i, algo) in ALGORITHMS.iter().enumerate() {
                let (secs, config) = best[i];
                let rel = secs / hashmap_time;
                print!("{:>24}", format!("{rel:.2}x ({config})"));
                rows.push(SLineCell {
                    dataset: p.name.to_string(),
                    algorithm: algo.name().to_string(),
                    s,
                    best_config: config.to_string(),
                    seconds: secs,
                    relative_to_hashmap: rel,
                });
            }
            println!(
                "   [hashmap: {hashmap_time:.4}s, {} line edges]",
                reference.len()
            );
        }
    }

    write_json("fig9_results.json", &rows);
}
