//! Regenerates **Figure 7** — strong scaling of hypergraph connected
//! component decomposition: AdjoinCC and HyperCC (NWHy) vs HygraCC
//! (baseline), runtime vs thread count on every Table I twin.
//!
//! Run: `cargo run --release -p nwhy-bench --bin fig7_cc_scaling`
//! Knobs: `NWHY_SCALE`, `NWHY_TRIALS`, `NWHY_MAX_THREADS`, `NWHY_SEED`.
//! Output: a runtime table per dataset + `fig7_results.json`.

use nwhy_bench::{all_twins, best_of, write_json, HarnessConfig, ScalingCell};
use nwhy_core::algorithms::{adjoin_cc_afforest, hyper_cc};
use nwhy_core::AdjoinGraph;
use nwhy_util::pool::with_threads;

fn main() {
    let cfg = HarnessConfig::from_env();
    let threads = cfg.thread_counts();
    println!(
        "Figure 7: hypergraph CC strong scaling (scale 1/{}, best of {} trials)",
        cfg.scale, cfg.trials
    );
    let mut rows: Vec<ScalingCell> = Vec::new();

    for (p, h) in all_twins(&cfg) {
        let adjoin = AdjoinGraph::from_hypergraph(&h);
        println!(
            "\n{} ({} hyperedges, {} hypernodes, {} incidences)",
            p.name,
            h.num_hyperedges(),
            h.num_hypernodes(),
            h.num_incidences()
        );
        println!(
            "{:>8} {:>14} {:>14} {:>14}",
            "threads", "AdjoinCC [s]", "HyperCC [s]", "HygraCC [s]"
        );
        for &t in &threads {
            let t_adjoin = with_threads(t, || best_of(cfg.trials, || adjoin_cc_afforest(&adjoin)));
            let t_hyper = with_threads(t, || best_of(cfg.trials, || hyper_cc(&h)));
            let t_hygra = with_threads(t, || best_of(cfg.trials, || hygra::hygra_cc(&h)));
            println!("{t:>8} {t_adjoin:>14.5} {t_hyper:>14.5} {t_hygra:>14.5}");
            for (alg, secs) in [
                ("AdjoinCC", t_adjoin),
                ("HyperCC", t_hyper),
                ("HygraCC", t_hygra),
            ] {
                rows.push(ScalingCell {
                    dataset: p.name.to_string(),
                    algorithm: alg.to_string(),
                    threads: t,
                    seconds: secs,
                });
            }
        }
        // correctness cross-check once per dataset
        let a = adjoin_cc_afforest(&adjoin).num_components();
        let b = hyper_cc(&h).num_components();
        let c = hygra::hygra_cc(&h).num_components();
        assert_eq!(a, b, "{}: AdjoinCC vs HyperCC component count", p.name);
        assert_eq!(a, c, "{}: AdjoinCC vs HygraCC component count", p.name);
        println!("{:>8} components: {a} (all algorithms agree)", "");
    }

    write_json("fig7_results.json", &rows);
}
