//! Text report for the ablation studies DESIGN.md calls out — a quick,
//! single-binary complement to the criterion `ablations` bench:
//!
//! A. relabel-by-degree × partitioning for s-line construction;
//! B. queue algorithms on the adjoin ID space vs non-queue + rebuild;
//! C. static vs dynamic work-queue scheduling (Algorithm 1);
//! D. direction-optimizing vs pure top-down/bottom-up BFS (adjoin);
//! E. Hygra engine modes (sparse / dense / auto);
//! F. the §III-D per-bin imbalance measurements.
//!
//! Run: `cargo run --release -p nwhy-bench --bin ablations_report`
//! Knobs: `NWHY_SCALE` (default 2000), `NWHY_TRIALS`, `NWHY_SEED`.

use nwgraph::algorithms::bfs::{bfs_bottom_up, bfs_top_down};
use nwhy_bench::{best_of, HarnessConfig};
use nwhy_core::algorithms::adjoin_bfs;
use nwhy_core::slinegraph::queue_single::{queue_hashmap, queue_hashmap_dynamic};
use nwhy_core::{AdjoinGraph, Algorithm, BuildOptions, HyperedgeId, Relabel, SLineBuilder};
use nwhy_gen::profiles::profile_by_name;
use nwhy_util::partition::{imbalance_report, Strategy};

fn main() {
    let cfg = HarnessConfig::from_env();
    let h = profile_by_name("Orkut-group")
        .expect("profile")
        .generate(cfg.scale, cfg.seed);
    let adjoin = AdjoinGraph::from_hypergraph(&h);
    println!(
        "Ablation report on the Orkut-group twin (scale 1/{}, best of {} trials)\n\
         {} hyperedges, {} incidences, max edge size {}",
        cfg.scale,
        cfg.trials,
        h.num_hyperedges(),
        h.num_incidences(),
        h.stats().max_edge_degree
    );

    // ---- A. relabel × partitioning ------------------------------------
    println!("\nA. hashmap s-line (s=2) under relabel × partitioning:");
    for (sname, strategy) in [
        ("blocked", Strategy::Blocked { num_bins: 0 }),
        ("cyclic", Strategy::Cyclic { num_bins: 0 }),
    ] {
        for (rname, relabel) in [
            ("none", Relabel::None),
            ("asc", Relabel::Ascending),
            ("desc", Relabel::Descending),
        ] {
            let opts = BuildOptions { strategy, relabel };
            let secs = best_of(cfg.trials, || {
                SLineBuilder::new(&h)
                    .s(2)
                    .algorithm(Algorithm::Hashmap)
                    .options(&opts)
                    .edges()
            });
            println!("   {sname:>8}/{rname:<5} {secs:>10.4}s");
        }
    }

    // ---- B. queue vs rebuild on the adjoin ID space --------------------
    println!("\nB. s-line (s=2) from the adjoin representation:");
    let queue: Vec<u32> = (0..nwhy_core::ids::from_usize(adjoin.num_hyperedges())).collect();
    let t_q1 = best_of(cfg.trials, || {
        queue_hashmap(&adjoin, &queue, 2, Strategy::AUTO)
    });
    println!("   Alg 1 directly on adjoin:      {t_q1:>10.4}s");
    let t_rebuild = best_of(cfg.trials, || {
        let rebuilt = adjoin.to_hypergraph();
        SLineBuilder::new(&rebuilt).s(2).edges()
    });
    println!(
        "   non-queue (rebuild + hashmap): {t_rebuild:>10.4}s  ({:.2}x)",
        t_rebuild / t_q1
    );

    // ---- C. scheduling --------------------------------------------------
    println!("\nC. Algorithm 1 work-queue scheduling (s=2):");
    let t_static = best_of(cfg.trials, || {
        queue_hashmap(&h, &queue, 2, Strategy::Blocked { num_bins: 0 })
    });
    let t_cyc = best_of(cfg.trials, || {
        queue_hashmap(&h, &queue, 2, Strategy::Cyclic { num_bins: 0 })
    });
    let t_dyn = best_of(cfg.trials, || queue_hashmap_dynamic(&h, &queue, 2));
    println!("   static blocked: {t_static:>10.4}s");
    println!("   static cyclic:  {t_cyc:>10.4}s");
    println!("   dynamic chunks: {t_dyn:>10.4}s");

    // ---- D. BFS directions on the adjoin graph -------------------------
    println!("\nD. BFS direction on the adjoin graph:");
    let src = 0u32;
    let t_td = best_of(cfg.trials, || bfs_top_down(adjoin.graph(), src));
    let t_bu = best_of(cfg.trials, || bfs_bottom_up(adjoin.graph(), src));
    let t_do = best_of(cfg.trials, || adjoin_bfs(&adjoin, HyperedgeId::new(src)));
    println!("   top-down:             {t_td:>10.5}s");
    println!("   bottom-up:            {t_bu:>10.5}s");
    println!("   direction-optimizing: {t_do:>10.5}s");

    // ---- E. Hygra engine modes ------------------------------------------
    println!("\nE. HygraBFS engine modes:");
    for (name, mode) in [
        ("force-sparse", hygra::engine::Mode::ForceSparse),
        ("force-dense", hygra::engine::Mode::ForceDense),
        ("auto", hygra::engine::Mode::Auto),
    ] {
        let secs = best_of(cfg.trials, || {
            hygra::bfs::hygra_bfs_with_mode(&h, src, mode)
        });
        println!("   {name:<13} {secs:>10.5}s");
    }

    // ---- F. imbalance ----------------------------------------------------
    println!("\nF. per-bin work imbalance (16 bins, max/mean; 1.0 = perfect):");
    let mut costs: Vec<usize> = (0..nwhy_core::ids::from_usize(h.num_hyperedges()))
        .map(|e| h.edge_degree(e))
        .collect();
    println!(
        "   original IDs:  blocked {:.2}  cyclic {:.2}",
        imbalance_report(&costs, Strategy::Blocked { num_bins: 16 }).2,
        imbalance_report(&costs, Strategy::Cyclic { num_bins: 16 }).2
    );
    costs.sort_unstable_by(|a, b| b.cmp(a));
    println!(
        "   degree-sorted: blocked {:.2}  cyclic {:.2}",
        imbalance_report(&costs, Strategy::Blocked { num_bins: 16 }).2,
        imbalance_report(&costs, Strategy::Cyclic { num_bins: 16 }).2
    );
}
