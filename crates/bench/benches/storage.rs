//! Storage bench: the compressed NWHYPAK1 representation vs the
//! pointer-based in-memory bi-adjacency — emits `BENCH_storage.json`.
//!
//! Three questions, one record each per dataset:
//!
//! - **Size** — `pack` cells time packing and carry the byte accounting
//!   in counters: `storage.packed_bytes` vs `storage.nwhybin1_bytes`
//!   (the uncompressed binary yardstick, 8 bytes/incidence + header)
//!   and `storage.bytes_per_incidence_milli` (×1000, counters are
//!   integers).
//! - **Traversal throughput** — the *same* generic BFS/CC kernels run
//!   on both backends (`-pointer` vs `-packed` cells), so the gap is
//!   purely the per-row varint decode, not a different algorithm.
//! - **s-line throughput** — Hashmap construction at s = 2 on both
//!   backends.
//!
//! Knobs: `NWHY_BENCH_SCALE` (twin down-scale factor, default 20 000 —
//! larger is smaller/faster), `NWHY_TRIALS` (default 5), `NWHY_BENCH_OUT`
//! (output directory, default `.`).

use nwhy_bench::{bench_cell, env_usize, write_json, BenchRecord};
use nwhy_core::algorithms::{hyper_bfs_generic, hyper_cc_generic};
use nwhy_core::{Hypergraph, SLineBuilder};
use nwhy_gen::profiles::profile_by_name;
use nwhy_store::Backend;

fn setup(name: &str, scale: usize) -> (Hypergraph, u32) {
    let h = profile_by_name(name).unwrap().generate(scale, 42);
    let src = (0..nwhy_core::ids::from_usize(h.num_hyperedges()))
        .max_by_key(|&e| h.edge_degree(e))
        .unwrap();
    (h, src)
}

fn main() {
    let scale = env_usize("NWHY_BENCH_SCALE", 20_000);
    let trials = env_usize("NWHY_TRIALS", 5);
    let out_dir = std::env::var("NWHY_BENCH_OUT").unwrap_or_else(|_| ".".into());
    let mut records: Vec<BenchRecord> = Vec::new();
    let run = |records: &mut Vec<BenchRecord>, name, algo, s, f: &mut dyn FnMut()| -> f64 {
        let rec = bench_cell("storage", name, algo, s, trials, &mut *f);
        println!("{name:>10} {algo:<24} {:.4}s", rec.median_seconds);
        let secs = rec.median_seconds;
        records.push(rec);
        secs
    };

    for name in ["com-Orkut", "Rand1"] {
        let (h, src) = setup(name, scale);

        // pack through a real file so the packed cells traverse exactly
        // what ships to disk (mmap-backed where the platform allows)
        let mut path = std::env::temp_dir();
        path.push(format!(
            "nwhy-bench-storage-{}-{name}.nwhypak",
            std::process::id()
        ));
        let packed_bytes = nwhy_io::write_packed_file(&path, &h).expect("pack must succeed");
        let c = nwhy_io::open_packed(&path, Backend::Auto).expect("packed image must open");
        let mut bin = Vec::new();
        nwhy_io::write_binary(&mut bin, &h).expect("in-memory NWHYBIN1 write");

        let mut size_rec = bench_cell("storage", name, "pack", None, trials, || {
            std::hint::black_box(nwhy_store::pack_hypergraph(&h));
        });
        let bpi = c.stats().bytes_per_incidence();
        size_rec
            .counters
            .push(("storage.packed_bytes".into(), packed_bytes));
        size_rec
            .counters
            .push(("storage.nwhybin1_bytes".into(), bin.len() as u64));
        // lint: bpi = total_bytes / nnz is a small non-negative ratio,
        // so the rounded milli-value always fits in u64 exactly.
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let bpi_milli = (bpi * 1000.0).round() as u64;
        size_rec
            .counters
            .push(("storage.bytes_per_incidence_milli".into(), bpi_milli));
        size_rec
            .counters
            .push(("storage.mapped".into(), u64::from(c.is_mapped())));
        println!(
            "{name:>10} {:<24} {:.4}s  ({packed_bytes} B packed vs {} B NWHYBIN1, \
             {bpi:.3} B/incidence)",
            "pack",
            size_rec.median_seconds,
            bin.len()
        );
        records.push(size_rec);

        let bfs_ptr = run(&mut records, name, "HyperBFS-pointer", None, &mut || {
            std::hint::black_box(hyper_bfs_generic(&h, src));
        });
        let bfs_pak = run(&mut records, name, "HyperBFS-packed", None, &mut || {
            std::hint::black_box(hyper_bfs_generic(&c, src));
        });
        let cc_ptr = run(&mut records, name, "HyperCC-pointer", None, &mut || {
            std::hint::black_box(hyper_cc_generic(&h));
        });
        let cc_pak = run(&mut records, name, "HyperCC-packed", None, &mut || {
            std::hint::black_box(hyper_cc_generic(&c));
        });
        let sl_ptr = run(
            &mut records,
            name,
            "SLine-hashmap-pointer",
            Some(2),
            &mut || {
                std::hint::black_box(SLineBuilder::new(&h).s(2).edges());
            },
        );
        let sl_pak = run(
            &mut records,
            name,
            "SLine-hashmap-packed",
            Some(2),
            &mut || {
                std::hint::black_box(SLineBuilder::new(&c).s(2).edges());
            },
        );
        println!(
            "{name:>10} packed/pointer slowdown: bfs {:.2}x  cc {:.2}x  sline {:.2}x",
            bfs_pak / bfs_ptr.max(f64::EPSILON),
            cc_pak / cc_ptr.max(f64::EPSILON),
            sl_pak / sl_ptr.max(f64::EPSILON)
        );

        std::fs::remove_file(&path).ok();
    }

    write_json(&format!("{out_dir}/BENCH_storage.json"), &records);
}
