//! Obs-overhead A/B micro-benchmark.
//!
//! Run twice over the same kernels:
//!
//! ```text
//! cargo bench -p nwhy-bench --bench obs_overhead
//! cargo bench -p nwhy-bench --bench obs_overhead --no-default-features
//! ```
//!
//! Criterion stores the two runs under `obs-on/…` and `obs-off/…` group
//! names (picked from `nwhy_obs::enabled()` at compile time), so
//! `target/criterion` holds both sides for comparison. The acceptance
//! bar for the instrumentation is < 2% delta on every kernel.

use criterion::{criterion_group, criterion_main, Criterion};
use nwhy_core::SLineBuilder;
use nwhy_gen::profiles::profile_by_name;
use std::hint::black_box;

const SCALE: usize = 20_000;

fn bench_overhead(c: &mut Criterion) {
    let h = profile_by_name("com-Orkut").unwrap().generate(SCALE, 42);
    let group_name = if nwhy_obs::enabled() {
        "obs-on"
    } else {
        "obs-off"
    };
    let mut group = c.benchmark_group(group_name);
    group.sample_size(20);
    group.bench_function("sline-hashmap-s2", |b| {
        b.iter(|| black_box(SLineBuilder::new(&h).s(2).edges()))
    });
    group.bench_function("hygra-bfs-auto", |b| {
        b.iter(|| {
            black_box(hygra::bfs::hygra_bfs_with_mode(
                &h,
                0,
                hygra::engine::Mode::Auto,
            ))
        })
    });
    group.bench_function("hygra-cc", |b| b.iter(|| black_box(hygra::hygra_cc(&h))));
    // The serving-telemetry hot path in isolation: each span open/close
    // pair costs two flight-ring seqlock records plus one windowed
    // latency observation, all attributed to the entered RequestCtx.
    // The obs-off side of the A/B measures the same loop over ZSTs, so
    // the delta IS the per-span flight-recorder price.
    group.bench_function("span-flight-record-1k", |b| {
        let ctx = nwhy_obs::RequestCtx::new();
        let _guard = ctx.enter();
        b.iter(|| {
            for _ in 0..1_000 {
                drop(black_box(nwhy_obs::span("bench.flight_probe")));
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench_overhead);
criterion_main!(benches);
