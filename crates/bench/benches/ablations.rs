//! Ablation benchmarks for the design choices DESIGN.md calls out:
//!
//! 1. **relabel-by-degree × partitioning** for s-line construction
//!    (the Fig. 9 configuration sweep, isolated per axis);
//! 2. **queue vs non-queue on permuted IDs** — the motivating case for
//!    Algorithms 1–2: the queue variants take the permutation directly,
//!    the non-queue ones pay a full hypergraph rebuild first;
//! 3. **direction-optimizing vs pure top-down/bottom-up BFS** on the
//!    adjoin graph;
//! 4. **Hygra engine modes** (sparse/dense/auto) for the baseline BFS;
//! 5. **Algorithm 2 phase split** — candidate-pair generation vs the
//!    intersection pass.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hygra::bfs::hygra_bfs_with_mode;
use hygra::engine::Mode;
use nwgraph::algorithms::bfs::{bfs_bottom_up, bfs_direction_optimizing, bfs_top_down};
use nwhy_core::slinegraph::queue_single::{queue_hashmap, queue_hashmap_dynamic};
use nwhy_core::slinegraph::queue_two_phase::{candidate_pairs, queue_intersection};
use nwhy_core::{AdjoinGraph, Algorithm, BuildOptions, Relabel, SLineBuilder};
use nwhy_gen::profiles::profile_by_name;
use nwhy_util::partition::Strategy;
use std::hint::black_box;

const SCALE: usize = 20_000;

fn bench_relabel_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_relabel");
    group.sample_size(10);
    let h = profile_by_name("com-Orkut").unwrap().generate(SCALE, 42);
    for (name, opts) in [
        (
            "blocked/none",
            BuildOptions {
                strategy: Strategy::Blocked { num_bins: 0 },
                relabel: Relabel::None,
            },
        ),
        (
            "blocked/desc",
            BuildOptions {
                strategy: Strategy::Blocked { num_bins: 0 },
                relabel: Relabel::Descending,
            },
        ),
        (
            "cyclic/none",
            BuildOptions {
                strategy: Strategy::Cyclic { num_bins: 0 },
                relabel: Relabel::None,
            },
        ),
        (
            "cyclic/asc",
            BuildOptions {
                strategy: Strategy::Cyclic { num_bins: 0 },
                relabel: Relabel::Ascending,
            },
        ),
        (
            "cyclic/desc",
            BuildOptions {
                strategy: Strategy::Cyclic { num_bins: 0 },
                relabel: Relabel::Descending,
            },
        ),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                black_box(
                    SLineBuilder::new(&h)
                        .s(2)
                        .algorithm(Algorithm::Hashmap)
                        .options(&opts)
                        .edges(),
                )
            })
        });
    }
    group.finish();
}

fn bench_queue_on_permuted_ids(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_queue_permuted");
    group.sample_size(10);
    let h = profile_by_name("com-Orkut").unwrap().generate(SCALE, 42);
    // The adjoin graph is the "permuted" ID space: hypernode IDs shifted.
    let a = AdjoinGraph::from_hypergraph(&h);
    let queue: Vec<u32> = (0..nwhy_core::ids::from_usize(a.num_hyperedges())).collect();
    group.bench_function("alg1-on-adjoin-direct", |b| {
        b.iter(|| black_box(queue_hashmap(&a, &queue, 2, Strategy::AUTO)))
    });
    group.bench_function("alg2-on-adjoin-direct", |b| {
        b.iter(|| black_box(queue_intersection(&a, &queue, 2, Strategy::AUTO)))
    });
    // the non-queue algorithm cannot run on the adjoin ID space: it must
    // first rebuild the two-index-set bi-adjacency
    group.bench_function("hashmap-via-rebuild", |b| {
        b.iter(|| {
            let rebuilt = a.to_hypergraph();
            black_box(SLineBuilder::new(&rebuilt).s(2).edges())
        })
    });
    // ...but with the generic refactor the non-queue algorithm can also
    // run straight on the adjoin representation — measure that too
    group.bench_function("hashmap-on-adjoin-direct", |b| {
        b.iter(|| black_box(SLineBuilder::new(&a).s(2).edges()))
    });
    group.finish();
}

fn bench_direction_optimizing(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_dobfs");
    group.sample_size(10);
    for name in ["Rand1", "com-Orkut"] {
        let h = profile_by_name(name).unwrap().generate(SCALE, 42);
        let a = AdjoinGraph::from_hypergraph(&h);
        let g = a.graph();
        let src = 0u32;
        group.bench_with_input(BenchmarkId::new(name, "top-down"), &(), |b, _| {
            b.iter(|| black_box(bfs_top_down(g, src)))
        });
        group.bench_with_input(BenchmarkId::new(name, "bottom-up"), &(), |b, _| {
            b.iter(|| black_box(bfs_bottom_up(g, src)))
        });
        group.bench_with_input(
            BenchmarkId::new(name, "direction-optimizing"),
            &(),
            |b, _| b.iter(|| black_box(bfs_direction_optimizing(g, src))),
        );
    }
    group.finish();
}

fn bench_hygra_modes(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_hygra_modes");
    group.sample_size(10);
    let h = profile_by_name("Rand1").unwrap().generate(SCALE, 42);
    for (name, mode) in [
        ("sparse", Mode::ForceSparse),
        ("dense", Mode::ForceDense),
        ("auto", Mode::Auto),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| black_box(hygra_bfs_with_mode(&h, 0, mode)))
        });
    }
    group.finish();
}

fn bench_scheduling(c: &mut Criterion) {
    // static blocked vs static cyclic vs dynamic chunk-stealing drain of
    // the Algorithm 1 work queue on a skewed twin
    let mut group = c.benchmark_group("ablation_scheduling");
    group.sample_size(10);
    let h = profile_by_name("Orkut-group").unwrap().generate(SCALE, 42);
    let queue: Vec<u32> = (0..nwhy_core::ids::from_usize(h.num_hyperedges())).collect();
    group.bench_function("static-blocked", |b| {
        b.iter(|| {
            black_box(queue_hashmap(
                &h,
                &queue,
                2,
                Strategy::Blocked { num_bins: 0 },
            ))
        })
    });
    group.bench_function("static-cyclic", |b| {
        b.iter(|| {
            black_box(queue_hashmap(
                &h,
                &queue,
                2,
                Strategy::Cyclic { num_bins: 0 },
            ))
        })
    });
    group.bench_function("dynamic-chunks", |b| {
        b.iter(|| black_box(queue_hashmap_dynamic(&h, &queue, 2)))
    });
    group.finish();
}

fn bench_alg2_phases(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_alg2_phases");
    group.sample_size(10);
    let h = profile_by_name("com-Orkut").unwrap().generate(SCALE, 42);
    let queue: Vec<u32> = (0..nwhy_core::ids::from_usize(h.num_hyperedges())).collect();
    group.bench_function("phase1-candidates-only", |b| {
        b.iter(|| black_box(candidate_pairs(&h, &queue, 2, Strategy::AUTO)))
    });
    group.bench_function("both-phases", |b| {
        b.iter(|| black_box(queue_intersection(&h, &queue, 2, Strategy::AUTO)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_relabel_ablation,
    bench_queue_on_permuted_ids,
    bench_direction_optimizing,
    bench_hygra_modes,
    bench_scheduling,
    bench_alg2_phases
);
criterion_main!(benches);
