//! Hypergraph traversal bench (BFS and CC on every representation plus
//! the Hygra baseline) — emits `BENCH_traversal.json`, one record per
//! algorithm × dataset with the median runtime and the kernel counters
//! one run produced (backing Figs. 7–8 plus the machine-readable perf
//! trajectory CI tracks).
//!
//! Knobs: `NWHY_BENCH_SCALE` (twin down-scale factor, default 20 000 —
//! larger is smaller/faster), `NWHY_TRIALS` (default 5), `NWHY_BENCH_OUT`
//! (output directory, default `.`).

use nwhy_bench::{bench_cell, env_usize, write_json, BenchRecord};
use nwhy_core::algorithms::{
    adjoin_bfs, adjoin_cc_afforest, adjoin_cc_label_propagation, hyper_bfs_bottom_up,
    hyper_bfs_top_down, hyper_cc,
};
use nwhy_core::{AdjoinGraph, HyperedgeId, Hypergraph};
use nwhy_gen::profiles::profile_by_name;

fn setup(name: &str, scale: usize) -> (Hypergraph, AdjoinGraph, u32) {
    let h = profile_by_name(name).unwrap().generate(scale, 42);
    let a = AdjoinGraph::from_hypergraph(&h);
    let src = (0..nwhy_core::ids::from_usize(h.num_hyperedges()))
        .max_by_key(|&e| h.edge_degree(e))
        .unwrap();
    (h, a, src)
}

fn main() {
    let scale = env_usize("NWHY_BENCH_SCALE", 20_000);
    let trials = env_usize("NWHY_TRIALS", 5);
    let out_dir = std::env::var("NWHY_BENCH_OUT").unwrap_or_else(|_| ".".into());
    let mut records: Vec<BenchRecord> = Vec::new();
    let run = |records: &mut Vec<BenchRecord>, name, algo, f: &mut dyn FnMut()| {
        let rec = bench_cell("traversal", name, algo, None, trials, &mut *f);
        println!("{name:>10} {algo:<20} {:.4}s", rec.median_seconds);
        records.push(rec);
    };

    for name in ["com-Orkut", "Rand1"] {
        let (h, a, src) = setup(name, scale);
        run(&mut records, name, "HyperBFS-topdown", &mut || {
            std::hint::black_box(hyper_bfs_top_down(&h, src));
        });
        run(&mut records, name, "HyperBFS-bottomup", &mut || {
            std::hint::black_box(hyper_bfs_bottom_up(&h, src));
        });
        run(&mut records, name, "AdjoinBFS", &mut || {
            std::hint::black_box(adjoin_bfs(&a, HyperedgeId::new(src)));
        });
        run(&mut records, name, "HygraBFS", &mut || {
            std::hint::black_box(hygra::hygra_bfs(&h, src));
        });
        run(&mut records, name, "HygraBFS-auto", &mut || {
            std::hint::black_box(hygra::bfs::hygra_bfs_with_mode(
                &h,
                src,
                hygra::engine::Mode::Auto,
            ));
        });
        run(&mut records, name, "HyperCC", &mut || {
            std::hint::black_box(hyper_cc(&h));
        });
        run(&mut records, name, "AdjoinCC-afforest", &mut || {
            std::hint::black_box(adjoin_cc_afforest(&a));
        });
        run(&mut records, name, "AdjoinCC-labelprop", &mut || {
            std::hint::black_box(adjoin_cc_label_propagation(&a));
        });
        run(&mut records, name, "HygraCC", &mut || {
            std::hint::black_box(hygra::hygra_cc(&h));
        });
    }

    write_json(&format!("{out_dir}/BENCH_traversal.json"), &records);
}
