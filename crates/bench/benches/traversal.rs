//! Criterion micro-benchmarks for the exact hypergraph traversals —
//! BFS and CC on every representation plus the Hygra baseline (backing
//! Figs. 7–8).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nwhy_core::algorithms::{
    adjoin_bfs, adjoin_cc_afforest, adjoin_cc_label_propagation, hyper_bfs_bottom_up,
    hyper_bfs_top_down, hyper_cc,
};
use nwhy_core::{AdjoinGraph, Hypergraph};
use nwhy_gen::profiles::profile_by_name;
use std::hint::black_box;

const SCALE: usize = 20_000;

fn setup(name: &str) -> (Hypergraph, AdjoinGraph, u32) {
    let h = profile_by_name(name).unwrap().generate(SCALE, 42);
    let a = AdjoinGraph::from_hypergraph(&h);
    let src = (0..h.num_hyperedges() as u32)
        .max_by_key(|&e| h.edge_degree(e))
        .unwrap();
    (h, a, src)
}

fn bench_bfs(c: &mut Criterion) {
    let mut group = c.benchmark_group("bfs");
    group.sample_size(10);
    for name in ["com-Orkut", "Rand1"] {
        let (h, a, src) = setup(name);
        group.bench_with_input(BenchmarkId::new(name, "HyperBFS-topdown"), &(), |b, _| {
            b.iter(|| black_box(hyper_bfs_top_down(&h, src)))
        });
        group.bench_with_input(BenchmarkId::new(name, "HyperBFS-bottomup"), &(), |b, _| {
            b.iter(|| black_box(hyper_bfs_bottom_up(&h, src)))
        });
        group.bench_with_input(BenchmarkId::new(name, "AdjoinBFS"), &(), |b, _| {
            b.iter(|| black_box(adjoin_bfs(&a, src)))
        });
        group.bench_with_input(BenchmarkId::new(name, "HygraBFS"), &(), |b, _| {
            b.iter(|| black_box(hygra::hygra_bfs(&h, src)))
        });
    }
    group.finish();
}

fn bench_cc(c: &mut Criterion) {
    let mut group = c.benchmark_group("cc");
    group.sample_size(10);
    for name in ["com-Orkut", "Rand1"] {
        let (h, a, _) = setup(name);
        group.bench_with_input(BenchmarkId::new(name, "HyperCC"), &(), |b, _| {
            b.iter(|| black_box(hyper_cc(&h)))
        });
        group.bench_with_input(BenchmarkId::new(name, "AdjoinCC-afforest"), &(), |b, _| {
            b.iter(|| black_box(adjoin_cc_afforest(&a)))
        });
        group.bench_with_input(BenchmarkId::new(name, "AdjoinCC-labelprop"), &(), |b, _| {
            b.iter(|| black_box(adjoin_cc_label_propagation(&a)))
        });
        group.bench_with_input(BenchmarkId::new(name, "HygraCC"), &(), |b, _| {
            b.iter(|| black_box(hygra::hygra_cc(&h)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_bfs, bench_cc);
criterion_main!(benches);
