//! Criterion micro-benchmarks for the substrate layers: CSR
//! construction, transpose, prefix sums, partitioner overhead, clique
//! expansion, and toplex computation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nwgraph::random::gnm_directed;
use nwgraph::{Csr, EdgeList};
use nwhy_core::algorithms::toplex::toplexes;
use nwhy_core::clique::clique_expansion;
use nwhy_gen::profiles::profile_by_name;
use nwhy_util::partition::{par_for_each_index, Strategy};
use nwhy_util::prefix::exclusive_prefix_sum;
use nwhy_util::sync::{AtomicU64, Ordering};
use std::hint::black_box;

fn bench_csr_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("csr");
    group.sample_size(10);
    let el: EdgeList = gnm_directed(50_000, 400_000, 1).to_edge_list();
    group.bench_function("build-50k-400k", |b| {
        b.iter(|| black_box(Csr::from_edge_list(&el)))
    });
    let g = Csr::from_edge_list(&el);
    group.bench_function("transpose-50k-400k", |b| {
        b.iter(|| black_box(g.transpose()))
    });
    group.finish();
}

fn bench_prefix_sum(c: &mut Criterion) {
    let mut group = c.benchmark_group("prefix_sum");
    group.sample_size(20);
    for n in [1usize << 12, 1 << 18, 1 << 21] {
        let vals: Vec<usize> = (0..n).map(|i| i % 13).collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &vals, |b, vals| {
            b.iter(|| black_box(exclusive_prefix_sum(vals)))
        });
    }
    group.finish();
}

fn bench_partitioners(c: &mut Criterion) {
    let mut group = c.benchmark_group("partitioner");
    group.sample_size(20);
    // skewed per-item work: item i costs ~i/1000 units, the worst case
    // for blocked partitioning the cyclic range is designed to fix
    let n = 100_000;
    let work = |i: usize| {
        let mut acc = 0u64;
        for k in 0..(i / 1000) {
            acc = acc.wrapping_add(k as u64);
        }
        acc
    };
    for (name, strategy) in [
        ("blocked-auto", Strategy::AUTO),
        ("blocked-16", Strategy::Blocked { num_bins: 16 }),
        ("cyclic-16", Strategy::Cyclic { num_bins: 16 }),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let total = AtomicU64::new(0);
                par_for_each_index(n, strategy, |i| {
                    total.fetch_add(work(i), Ordering::Relaxed);
                });
                black_box(total.into_inner())
            })
        });
    }
    group.finish();
}

fn bench_projections(c: &mut Criterion) {
    let mut group = c.benchmark_group("projection");
    group.sample_size(10);
    let h = profile_by_name("com-Orkut").unwrap().generate(40_000, 42);
    group.bench_function("clique-expansion", |b| {
        b.iter(|| black_box(clique_expansion(&h)))
    });
    group.bench_function("toplexes", |b| b.iter(|| black_box(toplexes(&h))));
    group.finish();
}

criterion_group!(
    benches,
    bench_csr_build,
    bench_prefix_sum,
    bench_partitioners,
    bench_projections
);
criterion_main!(benches);
