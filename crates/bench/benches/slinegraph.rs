//! s-line-graph construction bench — emits `BENCH_slinegraph.json`, one
//! record per algorithm × dataset × s with the median runtime and the
//! kernel counters one run produced (backing Fig. 9 plus the
//! machine-readable perf trajectory CI tracks).
//!
//! Knobs: `NWHY_BENCH_SCALE` (twin down-scale factor, default 20 000 —
//! larger is smaller/faster), `NWHY_TRIALS` (default 5), `NWHY_BENCH_OUT`
//! (output directory, default `.`).

use nwhy_bench::{bench_cell, env_usize, write_json, BenchRecord};
use nwhy_core::{Algorithm, Hypergraph, SLineBuilder};
use nwhy_gen::profiles::profile_by_name;

fn datasets(scale: usize) -> Vec<(&'static str, Hypergraph)> {
    ["com-Orkut", "Rand1"]
        .iter()
        .map(|n| (*n, profile_by_name(n).unwrap().generate(scale, 42)))
        .collect()
}

fn main() {
    let scale = env_usize("NWHY_BENCH_SCALE", 20_000);
    let trials = env_usize("NWHY_TRIALS", 5);
    let out_dir = std::env::var("NWHY_BENCH_OUT").unwrap_or_else(|_| ".".into());
    let mut records: Vec<BenchRecord> = Vec::new();

    for (name, h) in datasets(scale) {
        for s in [1usize, 2, 4] {
            for algo in [
                Algorithm::Naive,
                Algorithm::Hashmap,
                Algorithm::Intersection,
                Algorithm::QueueHashmap,
                Algorithm::QueueIntersection,
                Algorithm::PairSort,
            ] {
                // Naive is quadratic in |E| — only run it on inputs small
                // enough that the sweep stays interactive.
                if algo == Algorithm::Naive && h.num_hyperedges() > 2_000 {
                    continue;
                }
                let rec = bench_cell("slinegraph", name, algo.name(), Some(s), trials, || {
                    SLineBuilder::new(&h).s(s).algorithm(algo).edges()
                });
                println!(
                    "{name:>10} s={s} {:<18} {:.4}s",
                    rec.algorithm, rec.median_seconds
                );
                records.push(rec);
            }
        }
        let rec = bench_cell("slinegraph", name, "Ensemble", None, trials, || {
            SLineBuilder::new(&h).ensemble_edges(&[1, 2, 4])
        });
        println!(
            "{name:>10} s=[1,2,4] {:<15} {:.4}s",
            rec.algorithm, rec.median_seconds
        );
        records.push(rec);
    }

    write_json(&format!("{out_dir}/BENCH_slinegraph.json"), &records);
}
