//! Criterion micro-benchmarks for the s-line-graph construction
//! algorithms (backing Fig. 9 with statistically sound per-kernel
//! numbers at a fixed small scale).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nwhy_core::{Algorithm, Hypergraph, SLineBuilder};
use nwhy_gen::profiles::profile_by_name;
use std::hint::black_box;

const SCALE: usize = 20_000;

fn datasets() -> Vec<(&'static str, Hypergraph)> {
    ["com-Orkut", "Rand1"]
        .iter()
        .map(|n| (*n, profile_by_name(n).unwrap().generate(SCALE, 42)))
        .collect()
}

fn bench_algorithms(c: &mut Criterion) {
    let mut group = c.benchmark_group("slinegraph");
    group.sample_size(10);
    for (name, h) in datasets() {
        for s in [1usize, 2, 4] {
            for algo in [
                Algorithm::Hashmap,
                Algorithm::Intersection,
                Algorithm::QueueHashmap,
                Algorithm::QueueIntersection,
                Algorithm::PairSort,
            ] {
                group.bench_with_input(
                    BenchmarkId::new(format!("{name}/s{s}"), algo.name()),
                    &(&h, s, algo),
                    |b, (h, s, algo)| {
                        b.iter(|| black_box(SLineBuilder::new(*h).s(*s).algorithm(*algo).edges()))
                    },
                );
            }
        }
    }
    group.finish();
}

fn bench_ensemble_vs_singles(c: &mut Criterion) {
    let mut group = c.benchmark_group("ensemble");
    group.sample_size(10);
    let h = profile_by_name("com-Orkut").unwrap().generate(SCALE, 42);
    let svals = [1usize, 2, 4, 8];
    group.bench_function("one-pass-ensemble", |b| {
        b.iter(|| black_box(SLineBuilder::new(&h).ensemble_edges(&svals)))
    });
    group.bench_function("repeated-singles", |b| {
        b.iter(|| {
            for &s in &svals {
                black_box(SLineBuilder::new(&h).s(s).edges());
            }
        })
    });
    group.finish();
}

fn bench_weighted_and_online(c: &mut Criterion) {
    use nwhy_core::algorithms::s_components::s_connected_components_online;
    use nwhy_core::smetrics::SLineGraph;

    let mut group = c.benchmark_group("slinegraph_extensions");
    group.sample_size(10);
    let h = profile_by_name("com-Orkut").unwrap().generate(SCALE, 42);
    group.bench_function("weighted-build-s2", |b| {
        b.iter(|| black_box(SLineBuilder::new(&h).s(2).weighted_edges()))
    });
    group.bench_function("s2-components-online", |b| {
        b.iter(|| black_box(s_connected_components_online(&h, 2)))
    });
    group.bench_function("s2-components-materialized", |b| {
        b.iter(|| {
            let lg = SLineGraph::new(&h, 2);
            black_box(lg.s_connected_components())
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_algorithms,
    bench_ensemble_vs_singles,
    bench_weighted_and_online
);
criterion_main!(benches);
