//! s-line-graph construction bench — emits `BENCH_slinegraph.json`, one
//! record per algorithm × dataset × s with the median runtime and the
//! kernel counters one run produced (backing Fig. 9 plus the
//! machine-readable perf trajectory CI tracks).
//!
//! Beyond the Table I twins, two synthetic shapes exercise the adaptive
//! intersection engine and the kernel planner:
//!
//! - `PowerLawSkew` — heavy-tailed degrees; the `auto` rows here back
//!   the planner's acceptance claim (no more pairs/comparisons than the
//!   best fixed kernel, within 5%);
//! - `DenseOverlap` — a small hypernode universe with large hyperedges,
//!   where the forced-path rows (`intersection-merge` vs
//!   `intersection-bitset`) pin the bitset path's comparison-count win.
//!
//! Knobs: `NWHY_BENCH_SCALE` (twin down-scale factor, default 20 000 —
//! larger is smaller/faster), `NWHY_TRIALS` (default 5), `NWHY_BENCH_OUT`
//! (output directory, default `.`).

use nwhy_bench::{bench_cell, env_usize, write_json, BenchRecord};
use nwhy_core::{Algorithm, Hypergraph, OverlapPath, OverlapPolicy, SLineBuilder};
use nwhy_gen::powerlaw::PowerlawParams;
use nwhy_gen::profiles::profile_by_name;
use nwhy_gen::uniform_random;

fn datasets(scale: usize) -> Vec<(&'static str, Hypergraph)> {
    let mut out: Vec<(&'static str, Hypergraph)> = ["com-Orkut", "Rand1"]
        .iter()
        .map(|n| (*n, profile_by_name(n).unwrap().generate(scale, 42)))
        .collect();
    // heavy-tailed degrees: a few huge hyperedges over many tiny ones,
    // the shape the galloping path and queue promotion are built for
    let skew_edges = (40_000_000 / scale.max(1)).clamp(64, 8_192);
    out.push((
        "PowerLawSkew",
        nwhy_gen::powerlaw_hypergraph(PowerlawParams {
            num_nodes: skew_edges,
            num_edges: skew_edges,
            avg_node_degree: 3.0,
            node_exponent: 1.7,
            edge_exponent: 1.7,
            seed: 42,
        }),
    ));
    // large hyperedges over a tiny universe: nearly every pair overlaps
    // heavily, the regime where the packed-word bitset path wins
    let dense_edges = (4_000_000 / scale.max(1)).clamp(48, 512);
    out.push(("DenseOverlap", uniform_random(96, dense_edges, 48, 42)));
    out
}

fn main() {
    let scale = env_usize("NWHY_BENCH_SCALE", 20_000);
    let trials = env_usize("NWHY_TRIALS", 5);
    let out_dir = std::env::var("NWHY_BENCH_OUT").unwrap_or_else(|_| ".".into());
    let mut records: Vec<BenchRecord> = Vec::new();

    for (name, h) in datasets(scale) {
        for s in [1usize, 2, 4] {
            for algo in [
                Algorithm::Naive,
                Algorithm::Hashmap,
                Algorithm::Intersection,
                Algorithm::QueueHashmap,
                Algorithm::QueueIntersection,
                Algorithm::PairSort,
            ] {
                // Naive is quadratic in |E| — only run it on inputs small
                // enough that the sweep stays interactive.
                if algo == Algorithm::Naive && h.num_hyperedges() > 2_000 {
                    continue;
                }
                let rec = bench_cell("slinegraph", name, algo.name(), Some(s), trials, || {
                    SLineBuilder::new(&h).s(s).algorithm(algo).edges()
                });
                println!(
                    "{name:>12} s={s} {:<20} {:.4}s",
                    rec.algorithm, rec.median_seconds
                );
                records.push(rec);
            }
            // forced overlap paths through the intersection kernel, so
            // the per-path comparison counts are directly comparable
            for path in OverlapPath::ALL {
                let label = format!("intersection-{}", path.name());
                let rec = bench_cell("slinegraph", name, &label, Some(s), trials, || {
                    SLineBuilder::new(&h)
                        .s(s)
                        .algorithm(Algorithm::Intersection)
                        .overlap(OverlapPolicy::Force(path))
                        .edges()
                });
                println!(
                    "{name:>12} s={s} {:<20} {:.4}s",
                    rec.algorithm, rec.median_seconds
                );
                records.push(rec);
            }
            // the planner's pick — its counters must track the best
            // fixed kernel (the bench_json acceptance test checks this)
            let rec = bench_cell("slinegraph", name, "auto", Some(s), trials, || {
                SLineBuilder::new(&h).s(s).auto().edges()
            });
            println!(
                "{name:>12} s={s} {:<20} {:.4}s",
                rec.algorithm, rec.median_seconds
            );
            records.push(rec);
        }
        let rec = bench_cell("slinegraph", name, "Ensemble", None, trials, || {
            SLineBuilder::new(&h).ensemble_edges(&[1, 2, 4])
        });
        println!(
            "{name:>12} s=[1,2,4] {:<17} {:.4}s",
            rec.algorithm, rec.median_seconds
        );
        records.push(rec);
    }

    write_json(&format!("{out_dir}/BENCH_slinegraph.json"), &records);
}
