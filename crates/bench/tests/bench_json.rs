//! Schema check for the emitted `BENCH_*.json` perf-trajectory files.
//!
//! CI's bench-smoke job runs the `slinegraph`/`traversal`/`storage`
//! benches on tiny inputs first, so the files exist in the package root
//! (the bench binaries' working directory); locally, the test skips
//! files that have not been generated yet.

use nwhy_bench::validate_bench_json;

const FILES: [&str; 3] = [
    "BENCH_slinegraph.json",
    "BENCH_traversal.json",
    "BENCH_storage.json",
];

#[test]
fn emitted_bench_json_files_validate() {
    let mut found = 0;
    for name in FILES {
        match std::fs::read_to_string(name) {
            Ok(text) => {
                validate_bench_json(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
                found += 1;
            }
            Err(_) => eprintln!("(skipping {name}: run `cargo bench -p nwhy-bench` first)"),
        }
    }
    // Only enforce presence when the smoke job asked for it.
    if std::env::var_os("NWHY_REQUIRE_BENCH_JSON").is_some() {
        assert_eq!(
            found,
            FILES.len(),
            "bench-smoke requires every BENCH_*.json"
        );
    }
}

/// The storage bench's acceptance claims, checked against the emitted
/// numbers whenever the file exists: packed bytes-per-incidence must
/// beat the 8-byte NWHYBIN1 yardstick on every dataset.
#[test]
fn storage_bench_beats_nwhybin1_density() {
    let Ok(text) = std::fs::read_to_string("BENCH_storage.json") else {
        eprintln!("(skipping: run `cargo bench -p nwhy-bench --bench storage` first)");
        return;
    };
    validate_bench_json(&text).unwrap();
    let doc = nwhy_obs::json::parse(&text).unwrap();
    let mut pack_rows = 0;
    for row in doc.as_array().unwrap() {
        let algo = row.get("algorithm").and_then(|v| v.as_str()).unwrap();
        if algo != "pack" {
            continue;
        }
        pack_rows += 1;
        let counters = row.get("counters").unwrap();
        let packed = counters
            .get("storage.packed_bytes")
            .unwrap()
            .as_u64()
            .unwrap();
        let yardstick = counters
            .get("storage.nwhybin1_bytes")
            .unwrap()
            .as_u64()
            .unwrap();
        assert!(
            packed < yardstick,
            "packed image ({packed} B) must be smaller than NWHYBIN1 ({yardstick} B)"
        );
        let bpi_milli = counters
            .get("storage.bytes_per_incidence_milli")
            .unwrap()
            .as_u64()
            .unwrap();
        assert!(
            bpi_milli < 8000,
            "bytes/incidence {:.3} must beat NWHYBIN1's 8.0",
            bpi_milli as f64 / 1000.0
        );
    }
    assert!(pack_rows > 0, "storage bench must emit pack records");
}
