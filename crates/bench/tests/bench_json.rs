//! Schema check for the emitted `BENCH_*.json` perf-trajectory files.
//!
//! CI's bench-smoke job runs the `slinegraph`/`traversal` benches on
//! tiny inputs first, so the files exist in the package root (the bench
//! binaries' working directory); locally, the test skips files that
//! have not been generated yet.

use nwhy_bench::validate_bench_json;

#[test]
fn emitted_bench_json_files_validate() {
    let mut found = 0;
    for name in ["BENCH_slinegraph.json", "BENCH_traversal.json"] {
        match std::fs::read_to_string(name) {
            Ok(text) => {
                validate_bench_json(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
                found += 1;
            }
            Err(_) => eprintln!("(skipping {name}: run `cargo bench -p nwhy-bench` first)"),
        }
    }
    // Only enforce presence when the smoke job asked for it.
    if std::env::var_os("NWHY_REQUIRE_BENCH_JSON").is_some() {
        assert_eq!(found, 2, "bench-smoke requires both BENCH_*.json files");
    }
}
