//! Schema check for the emitted `BENCH_*.json` perf-trajectory files.
//!
//! CI's bench-smoke job runs the `slinegraph`/`traversal`/`storage`
//! benches on tiny inputs first, so the files exist in the package root
//! (the bench binaries' working directory); locally, the test skips
//! files that have not been generated yet.

use nwhy_bench::validate_bench_json;

const FILES: [&str; 3] = [
    "BENCH_slinegraph.json",
    "BENCH_traversal.json",
    "BENCH_storage.json",
];

#[test]
fn emitted_bench_json_files_validate() {
    let mut found = 0;
    for name in FILES {
        match std::fs::read_to_string(name) {
            Ok(text) => {
                validate_bench_json(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
                found += 1;
            }
            Err(_) => eprintln!("(skipping {name}: run `cargo bench -p nwhy-bench` first)"),
        }
    }
    // Only enforce presence when the smoke job asked for it.
    if std::env::var_os("NWHY_REQUIRE_BENCH_JSON").is_some() {
        assert_eq!(
            found,
            FILES.len(),
            "bench-smoke requires every BENCH_*.json"
        );
    }
}

/// Pulls `(algorithm, s) -> counter value` out of the slinegraph bench
/// rows for one dataset.
fn slinegraph_counter(
    doc: &nwhy_obs::json::Value,
    dataset: &str,
    algorithm: &str,
    s: u64,
    counter: &str,
) -> Option<u64> {
    for row in doc.as_array()? {
        if row.get("dataset").and_then(|v| v.as_str()) == Some(dataset)
            && row.get("algorithm").and_then(|v| v.as_str()) == Some(algorithm)
            && row.get("s").and_then(|v| v.as_u64()) == Some(s)
        {
            return row.get("counters")?.get(counter)?.as_u64();
        }
    }
    None
}

/// The adaptive engine's acceptance claims, checked against the emitted
/// numbers whenever the file exists:
///
/// - on the skewed power-law input, the planner's `auto` rows examine
///   no more pairs and burn no more comparison work than the best fixed
///   kernel (within 5%);
/// - on the dense input, the packed-word bitset path needs strictly
///   fewer element comparisons than the merge scan.
#[test]
fn adaptive_engine_meets_acceptance_on_emitted_bench() {
    let Ok(text) = std::fs::read_to_string("BENCH_slinegraph.json") else {
        eprintln!("(skipping: run `cargo bench -p nwhy-bench --bench slinegraph` first)");
        return;
    };
    validate_bench_json(&text).unwrap();
    let doc = nwhy_obs::json::parse(&text).unwrap();
    const FIXED: [&str; 6] = [
        "naive",
        "hashmap",
        "intersection",
        "queue-hashmap(alg1)",
        "queue-intersection(alg2)",
        "pair-sort",
    ];
    // zero-valued counters are omitted from the snapshot, so "missing"
    // means 0 once the row's presence is pinned by pairs_examined;
    // pair-sort is excluded from the work metric (its work is inside
    // the sort, which neither counter observes)
    let work = |algorithm: &str, s: u64| -> u64 {
        let get = |c| slinegraph_counter(&doc, "PowerLawSkew", algorithm, s, c).unwrap_or(0);
        get("sline.intersection_comparisons") + get("sline.hashmap_insertions")
    };
    for s in [1u64, 2, 4] {
        let auto_pairs =
            slinegraph_counter(&doc, "PowerLawSkew", "auto", s, "sline.pairs_examined")
                .expect("auto row must exist for PowerLawSkew");
        // the queue kernels only report *phase-2* pairs (phase 1 prunes
        // candidates below s before any pair is "examined"), so the
        // pairs axis is only comparable across the single-phase kernels
        let best_pairs = FIXED
            .iter()
            .filter(|a| !a.starts_with("queue-"))
            .filter_map(|a| slinegraph_counter(&doc, "PowerLawSkew", a, s, "sline.pairs_examined"))
            .min()
            .expect("fixed-kernel rows must exist");
        assert!(
            auto_pairs as f64 <= best_pairs as f64 * 1.05,
            "s={s}: auto examined {auto_pairs} pairs, best fixed kernel {best_pairs}"
        );
        let auto_work = work("auto", s);
        let best_work = FIXED
            .iter()
            .filter(|a| **a != "pair-sort")
            .map(|a| work(a, s))
            .min()
            .unwrap();
        assert!(
            auto_work as f64 <= best_work as f64 * 1.05,
            "s={s}: auto work {auto_work}, best fixed kernel {best_work}"
        );
    }
    for s in [1u64, 2, 4] {
        let get = |algorithm: &str| {
            slinegraph_counter(
                &doc,
                "DenseOverlap",
                algorithm,
                s,
                "sline.intersection_comparisons",
            )
            .expect("forced-path rows must exist for DenseOverlap")
        };
        let (merge, bitset) = (get("intersection-merge"), get("intersection-bitset"));
        assert!(
            bitset < merge,
            "s={s}: bitset path must beat merge on dense pairs ({bitset} vs {merge})"
        );
    }
}

/// The storage bench's acceptance claims, checked against the emitted
/// numbers whenever the file exists: packed bytes-per-incidence must
/// beat the 8-byte NWHYBIN1 yardstick on every dataset.
#[test]
fn storage_bench_beats_nwhybin1_density() {
    let Ok(text) = std::fs::read_to_string("BENCH_storage.json") else {
        eprintln!("(skipping: run `cargo bench -p nwhy-bench --bench storage` first)");
        return;
    };
    validate_bench_json(&text).unwrap();
    let doc = nwhy_obs::json::parse(&text).unwrap();
    let mut pack_rows = 0;
    for row in doc.as_array().unwrap() {
        let algo = row.get("algorithm").and_then(|v| v.as_str()).unwrap();
        if algo != "pack" {
            continue;
        }
        pack_rows += 1;
        let counters = row.get("counters").unwrap();
        let packed = counters
            .get("storage.packed_bytes")
            .unwrap()
            .as_u64()
            .unwrap();
        let yardstick = counters
            .get("storage.nwhybin1_bytes")
            .unwrap()
            .as_u64()
            .unwrap();
        assert!(
            packed < yardstick,
            "packed image ({packed} B) must be smaller than NWHYBIN1 ({yardstick} B)"
        );
        let bpi_milli = counters
            .get("storage.bytes_per_incidence_milli")
            .unwrap()
            .as_u64()
            .unwrap();
        assert!(
            bpi_milli < 8000,
            "bytes/incidence {:.3} must beat NWHYBIN1's 8.0",
            bpi_milli as f64 / 1000.0
        );
    }
    assert!(pack_rows > 0, "storage bench must emit pack records");
}
