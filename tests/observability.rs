//! End-to-end request attribution (ISSUE 9 acceptance fixture): two
//! concurrent queries run under distinct [`RequestCtx`] ids, and the
//! flight recorder's dump partitions every span event — and every
//! driver-loop counter delta — by the correct request id.
#![cfg(feature = "obs")]

use hygra::engine::Mode;
use nwhy::obs::{self, json, RequestCtx};
use nwhy::session::NWHypergraph;

/// The flight ring and registry are process-global, so tests touching
/// them serialize here (mirrors `nwhy-obs`'s own `isolated()` helper).
fn gate() -> std::sync::MutexGuard<'static, ()> {
    static GATE: std::sync::Mutex<()> = std::sync::Mutex::new(());
    GATE.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[test]
fn concurrent_queries_partition_flight_events_by_request_id() {
    let _gate = gate();
    obs::reset();

    let hg = NWHypergraph::from_hypergraph(nwhy::core::fixtures::paper_hypergraph());
    let bfs_ctx = RequestCtx::new();
    let cc_ctx = RequestCtx::new();
    assert_ne!(bfs_ctx.id(), cc_ctx.id());
    assert_ne!(bfs_ctx.id(), 0);

    std::thread::scope(|scope| {
        let hg = &hg;
        scope.spawn(move || {
            // Scoped style: the ctx wraps the whole query sequence.
            hg.with_ctx(bfs_ctx, |hg| {
                for _ in 0..10 {
                    let r = hygra::hygra_bfs_ctx(hg.hypergraph(), 0, Mode::ForceSparse, None);
                    assert_eq!(r.edge_levels[0], 0);
                }
            });
        });
        scope.spawn(move || {
            // Per-call style: the ctx is handed to each kernel; both
            // styles must attribute identically.
            for _ in 0..10 {
                let r = hygra::hygra_cc_ctx(hg.hypergraph(), Some(cc_ctx));
                assert_eq!(r.num_components(), 1);
            }
        });
    });

    let trace = obs::flight_chrome_trace(4096);
    let doc = json::parse(&trace).expect("chrome trace parses");
    let events = doc
        .get("traceEvents")
        .and_then(json::Value::as_array)
        .expect("traceEvents array");
    assert!(!events.is_empty());

    let mut bfs_spans = 0usize;
    let mut cc_spans = 0usize;
    for ev in events {
        let ph = ev.get("ph").and_then(json::Value::as_str).expect("ph");
        let name = ev.get("name").and_then(json::Value::as_str).expect("name");
        let req = ev
            .get("args")
            .and_then(|a| a.get("req"))
            .and_then(json::Value::as_u64)
            .expect("args.req");
        match ph {
            // span open ("i") / close ("X") events must partition exactly
            "i" | "X" => {
                if name.contains("hygra.bfs") {
                    assert_eq!(req, bfs_ctx.id(), "bfs span `{name}` mis-attributed");
                    bfs_spans += 1;
                } else if name.contains("hygra.cc") {
                    assert_eq!(req, cc_ctx.id(), "cc span `{name}` mis-attributed");
                    cc_spans += 1;
                } else {
                    panic!("unexpected span `{name}` in flight dump");
                }
            }
            // counter deltas fire on the driver threads, inside the ctx
            "C" => {
                if name.starts_with("bfs.") {
                    assert_eq!(req, bfs_ctx.id(), "counter `{name}` mis-attributed");
                } else if name.starts_with("cc.") {
                    assert_eq!(req, cc_ctx.id(), "counter `{name}` mis-attributed");
                } else {
                    panic!("unexpected counter `{name}` in flight dump");
                }
            }
            other => panic!("unexpected phase `{other}`"),
        }
    }
    // 10 runs × (1 open + 1 close) per side, nothing dropped: the ring
    // holds 4096 slots and this workload records far fewer events.
    assert_eq!(bfs_spans, 20);
    assert_eq!(cc_spans, 20);

    obs::reset();
}

#[test]
fn sline_builder_ctx_attributes_build_spans() {
    let _gate = gate();
    obs::reset();

    let hg = NWHypergraph::from_hypergraph(nwhy::core::fixtures::paper_hypergraph());
    let ctx = RequestCtx::new();
    let pairs = nwhy::core::SLineBuilder::new(hg.hypergraph())
        .s(2)
        .ctx(ctx)
        .edges();
    assert!(!pairs.is_empty());

    let events = obs::flight_drain_last(4096);
    assert!(!events.is_empty());
    let span_reqs: Vec<u64> = events
        .iter()
        .filter(|e| {
            matches!(
                e.kind,
                obs::FlightKind::SpanOpen | obs::FlightKind::SpanClose
            )
        })
        .map(|e| e.req)
        .collect();
    assert!(!span_reqs.is_empty());
    assert!(
        span_reqs.iter().all(|&r| r == ctx.id()),
        "sline build spans must carry the builder's ctx: {span_reqs:?}"
    );

    obs::reset();
}
