//! Cross-representation consistency on generated datasets.
//!
//! The paper's central design claim: the same hypergraph metric can be
//! computed on any of the four representations (bi-adjacency, adjoin,
//! s-line, clique expansion) and by either framework (NWHy or the Hygra
//! baseline). These tests pin that equivalence on every Table I twin at
//! test scale.

use nwhy::core::algorithms::{
    adjoin_bfs, adjoin_cc_afforest, adjoin_cc_label_propagation, hyper_bfs_bottom_up,
    hyper_bfs_top_down, hyper_cc,
};
use nwhy::core::slinegraph::queue_single::queue_hashmap;
use nwhy::core::slinegraph::queue_two_phase::queue_intersection;
use nwhy::core::{
    AdjoinGraph, Algorithm, BuildOptions, HyperedgeId, Hypergraph, Relabel, SLineBuilder,
};
use nwhy::gen::profiles::TABLE1;
use nwhy::util::partition::Strategy;

const TEST_SCALE: usize = 50_000;

fn twins() -> Vec<(&'static str, Hypergraph)> {
    TABLE1
        .iter()
        .map(|p| (p.name, p.generate(TEST_SCALE, 99)))
        .collect()
}

#[test]
fn bfs_agrees_across_representations_and_frameworks() {
    for (name, h) in twins() {
        let a = AdjoinGraph::from_hypergraph(&h);
        let src = (0..nwhy::core::ids::from_usize(h.num_hyperedges()))
            .max_by_key(|&e| h.edge_degree(e))
            .unwrap();
        let td = hyper_bfs_top_down(&h, src);
        let bu = hyper_bfs_bottom_up(&h, src);
        let ad = adjoin_bfs(&a, HyperedgeId::new(src));
        let hy = hygra::hygra_bfs(&h, src);
        assert_eq!(
            td.edge_levels, bu.edge_levels,
            "{name}: top-down vs bottom-up"
        );
        assert_eq!(
            td.edge_levels, ad.edge_levels,
            "{name}: bipartite vs adjoin"
        );
        assert_eq!(td.edge_levels, hy.edge_levels, "{name}: NWHy vs Hygra");
        assert_eq!(td.node_levels, ad.node_levels, "{name}: node levels");
        assert_eq!(td.node_levels, hy.node_levels, "{name}: node levels hygra");
    }
}

#[test]
fn cc_agrees_across_representations_and_frameworks() {
    for (name, h) in twins() {
        let a = AdjoinGraph::from_hypergraph(&h);
        let exact = hyper_cc(&h);
        let aff = adjoin_cc_afforest(&a);
        let lp = adjoin_cc_label_propagation(&a);
        let hy = hygra::hygra_cc(&h);
        assert_eq!(
            exact.num_components(),
            aff.num_components(),
            "{name}: afforest"
        );
        assert_eq!(
            exact.num_components(),
            lp.num_components(),
            "{name}: adjoin lp"
        );
        assert_eq!(exact.num_components(), hy.num_components(), "{name}: hygra");
    }
}

#[test]
fn slinegraph_algorithms_agree_on_twins() {
    for (name, h) in twins() {
        for s in [1usize, 2, 4] {
            let reference = SLineBuilder::new(&h).s(s).edges();
            for algo in [
                Algorithm::Intersection,
                Algorithm::QueueHashmap,
                Algorithm::QueueIntersection,
            ] {
                let got = SLineBuilder::new(&h).s(s).algorithm(algo).edges();
                assert_eq!(got, reference, "{name} s={s} {}", algo.name());
            }
        }
    }
}

#[test]
fn queue_algorithms_run_on_adjoin_without_remapping() {
    for (name, h) in twins() {
        let a = AdjoinGraph::from_hypergraph(&h);
        let queue: Vec<u32> = (0..nwhy::core::ids::from_usize(a.num_hyperedges())).collect();
        for s in [1usize, 2] {
            let bi = SLineBuilder::new(&h).s(s).edges();
            let via_adjoin_1 = queue_hashmap(&a, &queue, s, Strategy::AUTO);
            let via_adjoin_2 = queue_intersection(&a, &queue, s, Strategy::AUTO);
            assert_eq!(via_adjoin_1, bi, "{name} s={s} alg1 on adjoin");
            assert_eq!(via_adjoin_2, bi, "{name} s={s} alg2 on adjoin");
        }
    }
}

#[test]
fn relabel_and_strategy_do_not_change_results() {
    for (name, h) in twins().into_iter().take(3) {
        let reference = SLineBuilder::new(&h).s(2).edges();
        for relabel in [Relabel::Ascending, Relabel::Descending] {
            for strategy in [
                Strategy::Blocked { num_bins: 8 },
                Strategy::Cyclic { num_bins: 8 },
            ] {
                let opts = BuildOptions { strategy, relabel };
                for algo in [Algorithm::Hashmap, Algorithm::QueueHashmap] {
                    let got = SLineBuilder::new(&h)
                        .s(2)
                        .algorithm(algo)
                        .options(&opts)
                        .edges();
                    assert_eq!(
                        got,
                        reference,
                        "{name} {relabel:?} {strategy:?} {}",
                        algo.name()
                    );
                }
            }
        }
    }
}

#[test]
fn builder_agrees_across_representations_for_every_algorithm() {
    // the tentpole guarantee: one generic pipeline, any representation.
    // For every construction algorithm and s ∈ {1..4}, building from the
    // bi-adjacency and from the adjoin graph must give identical
    // canonical edge sets — with and without degree relabeling.
    for (name, h) in twins().into_iter().take(4) {
        let a = AdjoinGraph::from_hypergraph(&h);
        for s in 1..=4usize {
            let reference = SLineBuilder::new(&h).s(s).edges();
            for algo in Algorithm::ALL {
                let from_bi = SLineBuilder::new(&h).s(s).algorithm(algo).edges();
                let from_adjoin = SLineBuilder::new(&a).s(s).algorithm(algo).edges();
                assert_eq!(from_bi, reference, "{name} s={s} {} on bi", algo.name());
                assert_eq!(
                    from_adjoin,
                    reference,
                    "{name} s={s} {} on adjoin",
                    algo.name()
                );
                let relabeled = SLineBuilder::new(&a)
                    .s(s)
                    .algorithm(algo)
                    .relabel(Relabel::Descending)
                    .edges();
                assert_eq!(
                    relabeled,
                    reference,
                    "{name} s={s} {} relabeled on adjoin",
                    algo.name()
                );
            }
        }
    }
}

#[test]
fn adjoin_cc_partition_matches_bipartite_partition() {
    for (name, h) in twins().into_iter().take(3) {
        let a = AdjoinGraph::from_hypergraph(&h);
        let exact = hyper_cc(&h);
        let aff = adjoin_cc_afforest(&a);
        // same-component relation must agree on a sample of hyperedge pairs
        let ne = h.num_hyperedges();
        let step = (ne / 50).max(1);
        for i in (0..ne).step_by(step) {
            for j in (0..ne).step_by(step) {
                assert_eq!(
                    exact.edge_labels[i] == exact.edge_labels[j],
                    aff.edge_labels[i] == aff.edge_labels[j],
                    "{name}: pair ({i},{j})"
                );
            }
        }
    }
}
