//! Integration tests for the extension surface: weighted s-line graphs,
//! (k, ℓ)-cores, hypergraph transformations, rectangular matrix ops,
//! DOT export, and the dynamic work queue — all running together on
//! generated data.

use nwhy::core::algorithms::kcore::{kl_core, validate_kl_core};
use nwhy::core::ops::{diffusion_step, dominant_singular, incidence_checksum};
use nwhy::core::slinegraph::queue_single::{queue_hashmap, queue_hashmap_dynamic};
use nwhy::core::slinegraph::weighted::slinegraph_weighted_edges;
use nwhy::core::transform::{
    collapse_duplicate_edges, induced_subhypergraph, restrict_to_toplexes,
};
use nwhy::core::SLineBuilder;
use nwhy::gen::profiles::profile_by_name;
use nwhy::session::NWHypergraph;
use nwhy::util::partition::Strategy;

#[test]
fn weighted_linegraph_agrees_with_unweighted_on_twins() {
    let h = profile_by_name("com-Orkut").unwrap().generate(50_000, 5);
    for s in [1usize, 2, 3] {
        let unweighted = SLineBuilder::new(&h).s(s).edges();
        let weighted = slinegraph_weighted_edges(&h, s, Strategy::AUTO);
        assert_eq!(weighted.len(), unweighted.len(), "s={s}");
        for (&(a, b), &(wa, wb, o)) in unweighted.iter().zip(&weighted) {
            assert_eq!((a, b), (wa, wb));
            assert!(o as usize >= s);
        }
    }
}

#[test]
fn dynamic_queue_matches_static_on_twins() {
    for name in ["Orkut-group", "Rand1"] {
        let h = profile_by_name(name).unwrap().generate(100_000, 5);
        let queue: Vec<u32> = (0..nwhy::core::ids::from_usize(h.num_hyperedges())).collect();
        for s in [1usize, 2] {
            assert_eq!(
                queue_hashmap_dynamic(&h, &queue, s),
                queue_hashmap(&h, &queue, s, Strategy::AUTO),
                "{name} s={s}"
            );
        }
    }
}

#[test]
fn kl_cores_validate_on_twins() {
    let h = profile_by_name("LiveJournal").unwrap().generate(50_000, 5);
    for (k, l) in [(1, 1), (2, 2), (3, 5), (5, 2)] {
        let core = kl_core(&h, k, l);
        validate_kl_core(&h, k, l, &core).unwrap();
    }
}

#[test]
fn transformations_preserve_slinegraph_semantics() {
    let h = profile_by_name("Friendster").unwrap().generate(50_000, 5);
    // collapsing duplicates must not create or destroy s-overlaps among
    // surviving representatives
    let (c, classes) = collapse_duplicate_edges(&h);
    let collapsed = SLineBuilder::new(&c).s(2).edges();
    let original = SLineBuilder::new(&h).s(2).edges();
    // map collapsed pairs back through representatives; they must exist
    for &(a, b) in &collapsed {
        let ra = classes[a as usize][0];
        let rb = classes[b as usize][0];
        let key = if ra < rb { (ra, rb) } else { (rb, ra) };
        assert!(original.contains(&key), "collapsed pair {key:?} missing");
    }
}

#[test]
fn induced_subhypergraph_respects_membership() {
    let h = profile_by_name("Rand1").unwrap().generate(200_000, 5);
    let keep: Vec<u32> = (0..nwhy::core::ids::from_usize(h.num_hypernodes()))
        .step_by(2)
        .collect();
    let (sub, node_map) = induced_subhypergraph(&h, &keep);
    assert_eq!(sub.num_hypernodes(), keep.len());
    for e in 0..nwhy::core::ids::from_usize(sub.num_hyperedges()) {
        for &nv in sub.edge_members(e) {
            let old = node_map[nv as usize];
            assert!(h.edge_members(e).contains(&old));
        }
    }
}

#[test]
fn rectangular_ops_on_twins() {
    let h = profile_by_name("Web").unwrap().generate(100_000, 5);
    let (a, b, c) = incidence_checksum(&h);
    assert_eq!(a, c as f64);
    assert_eq!(b, c as f64);
    // one diffusion step conserves probability mass
    let n = h.num_hypernodes();
    let x = vec![1.0 / n as f64; n];
    let y = diffusion_step(&h, &x);
    assert!((y.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    // dominant singular value is bounded below by sqrt(max edge size)
    let (sigma, _) = dominant_singular(&h, 1e-9, 100);
    let max_e = h.stats().max_edge_degree as f64;
    assert!(sigma + 1e-6 >= max_e.sqrt(), "sigma {sigma} vs √{max_e}");
}

#[test]
fn online_session_components_match_materialized() {
    let h = profile_by_name("LiveJournal").unwrap().generate(100_000, 9);
    let hg = NWHypergraph::from_hypergraph(h);
    for s in [1usize, 2, 3] {
        let online = hg.s_connected_components_online(s);
        let materialized = hg.s_linegraph(s, true).s_connected_components();
        assert_eq!(online, materialized, "s={s}");
        assert_eq!(
            hg.is_s_connected_online(s),
            online.windows(2).all(|w| w[0] == w[1])
        );
    }
}

#[test]
fn toplex_restriction_then_full_analysis() {
    let h = profile_by_name("com-Orkut").unwrap().generate(100_000, 5);
    let hg = NWHypergraph::from_hypergraph(h);
    let (simplified, kept) = hg.restrict_to_toplexes();
    assert!(!kept.is_empty());
    assert!(simplified.num_hyperedges() <= hg.num_hyperedges());
    // the simplified hypergraph still answers every session query
    let lg = simplified.s_linegraph(2, true);
    assert_eq!(lg.num_vertices(), simplified.num_hyperedges());
    let _ = lg.s_connected_components();
    let core = simplified.kl_core(2, 2);
    validate_kl_core(simplified.hypergraph(), 2, 2, &core).unwrap();
}

#[test]
fn dot_export_renders_generated_hypergraphs() {
    let h = profile_by_name("Rand1").unwrap().generate(2_000_000, 5); // tiny
    let mut buf = Vec::new();
    nwhy::io::dot::write_dot_bipartite(&mut buf, &h).unwrap();
    let dot = String::from_utf8(buf).unwrap();
    assert!(dot.contains("graph hypergraph"));
    let triples = slinegraph_weighted_edges(&h, 1, Strategy::AUTO);
    let mut buf = Vec::new();
    nwhy::io::dot::write_dot_linegraph(&mut buf, h.num_hyperedges(), 1, &triples).unwrap();
    assert!(String::from_utf8(buf).unwrap().contains("slinegraph_s1"));
}

#[test]
fn restriction_then_toplexes_is_idempotent() {
    let h = profile_by_name("Orkut-group").unwrap().generate(100_000, 7);
    let (t1, _) = restrict_to_toplexes(&h);
    let (t2, map2) = restrict_to_toplexes(&t1);
    // all edges of a toplex restriction are already maximal
    assert_eq!(t2.num_hyperedges(), t1.num_hyperedges());
    assert_eq!(
        map2,
        (0..nwhy::core::ids::from_usize(t1.num_hyperedges())).collect::<Vec<_>>()
    );
}
