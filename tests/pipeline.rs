//! Session-API pipeline tests: the Listing 5 workflow on generated data,
//! plus failure-injection around malformed inputs and degenerate
//! hypergraphs.

use nwhy::core::algorithms::toplex::validate_toplexes;
use nwhy::core::clique::validate_clique_expansion;
use nwhy::gen::communities::{planted_communities, CommunityParams};
use nwhy::gen::uniform_random;
use nwhy::io::{read_hyperedge_list, read_matrix_market};
use nwhy::session::NWHypergraph;
use std::io::Cursor;

#[test]
fn full_session_on_planted_communities() {
    let h = planted_communities(CommunityParams {
        num_nodes: 300,
        num_communities: 80,
        min_size: 3,
        max_size: 10,
        rewire: 0.2,
        seed: 5,
    });
    let hg = NWHypergraph::from_hypergraph(h.clone());

    // every Listing 5 query runs and returns consistently-sized results
    let lg = hg.s_linegraph(2, true);
    let n = hg.num_hyperedges();
    assert_eq!(lg.s_connected_components().len(), n);
    assert_eq!(lg.s_betweenness_centrality(true).len(), n);
    assert_eq!(lg.s_closeness_centrality(None).len(), n);
    assert_eq!(lg.s_harmonic_closeness_centrality(None).len(), n);
    assert_eq!(lg.s_eccentricity(None).len(), n);

    // distances are symmetric and triangle-consistent on a sample
    for (a, b) in [(0u32, 5u32), (3, 40), (10, 70)] {
        assert_eq!(lg.s_distance(a, b), lg.s_distance(b, a));
        if let Some(p) = lg.s_path(a, b) {
            assert_eq!(
                nwhy::core::ids::from_usize(p.len()) - 1,
                lg.s_distance(a, b).unwrap()
            );
            assert_eq!(p.first(), Some(&a));
            assert_eq!(p.last(), Some(&b));
        }
    }

    // structural validators
    validate_clique_expansion(&h, &hg.clique_expansion()).unwrap();
    validate_toplexes(&h, &hg.toplexes()).unwrap();
}

#[test]
fn ensemble_is_consistent_with_singles_on_random_data() {
    let h = uniform_random(500, 400, 8, 13);
    let hg = NWHypergraph::from_hypergraph(h);
    let svals = [1usize, 2, 3];
    let many = hg.s_linegraphs(&svals, true);
    for (lg, &s) in many.iter().zip(&svals) {
        let single = hg.s_linegraph(s, true);
        assert_eq!(lg.graph(), single.graph(), "s={s}");
    }
}

#[test]
fn s_sweep_monotonicity_on_session() {
    let h = uniform_random(200, 300, 6, 21);
    let hg = NWHypergraph::from_hypergraph(h);
    let mut prev_edges = usize::MAX;
    for s in 1..=5 {
        let lg = hg.s_linegraph(s, true);
        let m = lg.graph().num_edges();
        assert!(m <= prev_edges, "edge count must shrink with s");
        prev_edges = m;
    }
}

#[test]
fn clique_side_equals_dual_line_side() {
    let h = uniform_random(120, 150, 5, 31);
    let hg = NWHypergraph::from_hypergraph(h);
    let via_flag = hg.s_linegraph(1, false);
    let via_dual = hg.dual().s_linegraph(1, true);
    assert_eq!(via_flag.graph(), via_dual.graph());
}

// ---------- failure injection ------------------------------------------

#[test]
fn malformed_matrix_market_inputs_error_cleanly() {
    let cases = [
        "",                                                                   // empty
        "garbage\n1 1 1\n",                                                   // no header
        "%%MatrixMarket matrix coordinate pattern general\n",                 // no dims
        "%%MatrixMarket matrix coordinate pattern general\nx y z\n",          // bad dims
        "%%MatrixMarket matrix coordinate pattern general\n2 2 1\n5 1\n",     // OOB
        "%%MatrixMarket matrix coordinate pattern general\n2 2 3\n1 1\n",     // count short
        "%%MatrixMarket matrix array pattern general\n2 2\n",                 // dense
        "%%MatrixMarket matrix coordinate complex general\n1 1 1\n1 1 1 1\n", // complex
    ];
    for (i, case) in cases.iter().enumerate() {
        assert!(
            read_matrix_market(Cursor::new(*case)).is_err(),
            "case {i} should fail: {case:?}"
        );
    }
}

#[test]
fn malformed_hyperedge_lists_error_cleanly() {
    for case in ["0 1 banana\n", "0 -3\n", "1.5\n"] {
        assert!(read_hyperedge_list(Cursor::new(case)).is_err(), "{case:?}");
    }
}

#[test]
fn degenerate_hypergraphs_do_not_break_queries() {
    // empty hyperedges, isolated nodes, singleton edges, duplicates
    let h = nwhy::core::Hypergraph::from_biedgelist(&nwhy::core::BiEdgeList::from_incidences(
        5,
        6,
        vec![(0, 0), (0, 1), (2, 0), (2, 1), (3, 5)],
    ));
    let hg = NWHypergraph::from_hypergraph(h);
    // e1 and e4 are empty; node 2,3,4 isolated
    for s in 1..=3 {
        let lg = hg.s_linegraph(s, true);
        assert_eq!(lg.num_vertices(), 5);
        let _ = lg.s_connected_components();
        let _ = lg.s_eccentricity(None);
    }
    let tops = hg.toplexes();
    validate_toplexes(hg.hypergraph(), &tops).unwrap();
}

#[test]
fn s_larger_than_max_overlap_yields_isolated_line_graph() {
    let h = uniform_random(50, 30, 4, 17);
    let hg = NWHypergraph::from_hypergraph(h);
    let lg = hg.s_linegraph(100, true);
    assert_eq!(lg.graph().num_edges(), 0);
    assert_eq!(lg.s_connected_components(), (0..30u32).collect::<Vec<_>>());
    assert_eq!(lg.s_distance(0, 1), None);
}
