//! End-to-end integration: file formats → representations → algorithms.
//!
//! These tests span crates: `nwhy-io` readers feed `nwhy-core`
//! representations, which feed `nwgraph` algorithms through the session
//! API — the full pipeline a downstream user runs.

use nwhy::core::algorithms::{adjoin_bfs, adjoin_cc_afforest, hyper_bfs_top_down, hyper_cc};
use nwhy::core::fixtures::{paper_hypergraph, paper_slinegraph_edges};
use nwhy::core::{AdjoinGraph, HyperedgeId};
use nwhy::io::{read_adjoin, read_hyperedge_list, read_matrix_market, write_matrix_market};
use nwhy::session::NWHypergraph;
use std::io::Cursor;

#[test]
fn matrix_market_roundtrip_preserves_all_queries() {
    let h = paper_hypergraph();
    let mut buf = Vec::new();
    write_matrix_market(&mut buf, &h).unwrap();
    let h2 = read_matrix_market(Cursor::new(&buf)).unwrap();

    let hg = NWHypergraph::from_hypergraph(h);
    let hg2 = NWHypergraph::from_hypergraph(h2);
    for s in 1..=4 {
        let a = hg.s_linegraph(s, true);
        let b = hg2.s_linegraph(s, true);
        assert_eq!(a.graph(), b.graph(), "s={s}");
    }
    assert_eq!(hg.toplexes(), hg2.toplexes());
}

#[test]
fn adjoin_reader_matches_biadjacency_reader() {
    let h = paper_hypergraph();
    let mut buf = Vec::new();
    write_matrix_market(&mut buf, &h).unwrap();

    let h_read = read_matrix_market(Cursor::new(&buf)).unwrap();
    let (a_read, ne, nv) = read_adjoin(Cursor::new(&buf)).unwrap();
    assert_eq!((ne, nv), (4, 9));
    assert_eq!(a_read.to_hypergraph(), h_read);

    // exact algorithms agree between the two paths
    let hr = hyper_bfs_top_down(&h_read, 0);
    let ar = adjoin_bfs(&a_read, HyperedgeId::new(0));
    assert_eq!(hr.edge_levels, ar.edge_levels);
    assert_eq!(hr.node_levels, ar.node_levels);
}

#[test]
fn hyperedge_list_to_smetrics_pipeline() {
    let text = "\
# four research teams
0 1 2 3
3 4 5 6
4 5 6 7 8
0 2 3 5 8
";
    let h = read_hyperedge_list(Cursor::new(text)).unwrap();
    assert_eq!(h, paper_hypergraph());
    let hg = NWHypergraph::from_hypergraph(h);
    let lg3 = hg.s_linegraph(3, true);
    // fixture s=3 edges: {03, 12}
    assert_eq!(lg3.s_neighbors(0), &[3]);
    assert_eq!(lg3.s_neighbors(1), &[2]);
    assert!(!lg3.is_s_connected());
}

#[test]
fn generated_dataset_full_pipeline() {
    // generate → serialize → reload → analyze, on a skewed twin
    let h = nwhy::gen::profiles::profile_by_name("Friendster")
        .unwrap()
        .generate(20_000, 3);
    let mut buf = Vec::new();
    write_matrix_market(&mut buf, &h).unwrap();
    let h2 = read_matrix_market(Cursor::new(&buf)).unwrap();
    assert_eq!(h, h2);

    let a = AdjoinGraph::from_hypergraph(&h2);
    let cc_bi = hyper_cc(&h2);
    let cc_ad = adjoin_cc_afforest(&a);
    assert_eq!(cc_bi.num_components(), cc_ad.num_components());
}

#[test]
fn session_over_file_input_matches_listing5_semantics() {
    let text = "0 1 2\n0 1 2\n";
    let h = read_hyperedge_list(Cursor::new(text)).unwrap();
    let hg = NWHypergraph::from_hypergraph(h);
    let s2 = hg.s_linegraph(2, true);
    assert!(s2.is_s_connected());
    assert_eq!(s2.s_distance(0, 1), Some(1));
    // duplicate hyperedges: only one toplex survives
    assert_eq!(hg.toplexes(), vec![0]);
}

#[test]
fn fixture_slinegraphs_documented_in_figure5() {
    // the repository fixture plays the role of the paper's Fig. 1/5 toy;
    // every public construction path must reproduce its line graphs
    let hg = NWHypergraph::from_hypergraph(paper_hypergraph());
    for s in 1..=4 {
        let lg = hg.s_linegraph(s, true);
        let expect = paper_slinegraph_edges(s);
        let mut got: Vec<(u32, u32)> = Vec::new();
        for e in 0..4u32 {
            for &f in lg.s_neighbors(e) {
                if e < f {
                    got.push((e, f));
                }
            }
        }
        got.sort_unstable();
        assert_eq!(got, expect, "s={s}");
    }
}
