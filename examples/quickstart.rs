//! Quickstart — the paper's Listing 5 session, in Rust.
//!
//! Builds a small author–paper hypergraph from incidence arrays, asks for
//! its 2-line graph, and runs every s-metric query the paper's Python API
//! exposes.
//!
//! Run with: `cargo run --release -p nwhy --example quickstart`

use nwhy::session::NWHypergraph;

fn main() {
    // Five papers (hyperedges) over eight authors (hypernodes).
    // Incidence arrays exactly as the Python API takes them:
    //   row[i] = author of incidence i, col[i] = paper of incidence i.
    #[rustfmt::skip]
    let row: Vec<u32> = vec![0, 1, 2,  1, 2, 3,  3, 4, 5,  4, 5, 6, 7,  0, 2];
    #[rustfmt::skip]
    let col: Vec<u32> = vec![0, 0, 0,  1, 1, 1,  2, 2, 2,  3, 3, 3, 3,  4, 4];

    // create a hypergraph hg            (Listing 5: nwhy.NWHypergraph)
    let hg = NWHypergraph::new(&row, &col);
    let stats = hg.stats();
    println!(
        "hypergraph: {} papers, {} authors, {} incidences",
        stats.num_hyperedges, stats.num_hypernodes, stats.num_incidences
    );
    println!(
        "average paper size {:.2}, largest paper {}",
        stats.avg_edge_degree, stats.max_edge_degree
    );

    // compute the s-line graph of hg with s=2
    let s2lg = hg.s_linegraph(2, true);
    println!("\n2-line graph (papers sharing >= 2 authors):");
    for e in 0..nwhy::core::ids::from_usize(stats.num_hyperedges) {
        println!(
            "  paper {e}: s-degree {}, s-neighbors {:?}",
            s2lg.s_degree(e),
            s2lg.s_neighbors(e)
        );
    }

    // query whether the 2-line graph is connected
    println!("\nis_s_connected: {}", s2lg.is_s_connected());

    // compute s-connected components
    let scc = s2lg.s_connected_components();
    println!("s_connected_components: {scc:?}");

    // s-distance and s-path between papers 0 and 2
    match s2lg.s_distance(0, 2) {
        Some(d) => println!(
            "s_distance(0, 2) = {d}, s_path = {:?}",
            s2lg.s_path(0, 2).unwrap()
        ),
        None => println!("papers 0 and 2 are not 2-connected"),
    }

    // centralities
    let sbc = s2lg.s_betweenness_centrality(true);
    let sc = s2lg.s_closeness_centrality(None);
    let shc = s2lg.s_harmonic_closeness_centrality(None);
    let se = s2lg.s_eccentricity(None);
    println!("\nper-paper centralities on the 2-line graph:");
    println!(
        "  {:>5} {:>12} {:>12} {:>12} {:>6}",
        "paper", "betweenness", "closeness", "harmonic", "ecc"
    );
    for e in 0..stats.num_hyperedges {
        println!(
            "  {:>5} {:>12.4} {:>12.4} {:>12.4} {:>6}",
            e, sbc[e], sc[e], shc[e], se[e]
        );
    }

    // toplexes: maximal papers (author sets not contained in another's)
    println!("\ntoplexes: {:?}", hg.toplexes());

    // the 1-clique side: author collaboration graph (clique expansion)
    let collab = hg.s_linegraph(1, false);
    println!("\nauthor collaboration graph (clique expansion):");
    for v in 0..nwhy::core::ids::from_usize(stats.num_hypernodes) {
        println!("  author {v} collaborated with {:?}", collab.s_neighbors(v));
    }
}
