//! Partitioning & load balance — a measured walkthrough of §III-D.
//!
//! The paper argues that blocked partitioning misbehaves on skewed-degree
//! hypergraphs (especially after relabel-by-degree sorts the hubs
//! together) and introduces cyclic / cyclic-neighbor ranges to fix it.
//! This example puts numbers on that claim:
//!
//! 1. measures the per-bin work imbalance of blocked vs cyclic splits of
//!    a skewed twin's hyperedge set, before and after degree relabeling;
//! 2. times the hashmap s-line construction under each (strategy ×
//!    relabel) configuration — the Fig. 9 configuration sweep, shown
//!    explicitly rather than best-of;
//! 3. demonstrates the dynamic chunk-stealing work queue as the
//!    finest-grained alternative.
//!
//! Run with: `cargo run --release -p nwhy --example partitioning`

use nwhy::core::slinegraph::queue_single::{queue_hashmap, queue_hashmap_dynamic};
use nwhy::core::{BuildOptions, Relabel, SLineBuilder};
use nwhy::gen::profiles::profile_by_name;
use nwhy::util::partition::{imbalance_report, Strategy};
use nwhy::util::timer::time;

fn main() {
    let h = profile_by_name("Orkut-group")
        .expect("profile")
        .generate(4000, 11);
    let stats = h.stats();
    println!(
        "Orkut-group twin: {} hyperedges, avg size {:.1}, max size {} (skew {:.0}x)",
        stats.num_hyperedges,
        stats.avg_edge_degree,
        stats.max_edge_degree,
        stats.max_edge_degree as f64 / stats.avg_edge_degree
    );

    // --- 1. static imbalance of the hyperedge workload -------------------
    // cost model: the s-line indirection work per hyperedge is roughly
    // the sum of its members' node degrees; edge size is a cheap proxy
    let mut costs: Vec<usize> = (0..nwhy::core::ids::from_usize(stats.num_hyperedges))
        .map(|e| h.edge_degree(e))
        .collect();
    println!("\nper-bin work imbalance (max/mean over 16 bins; 1.0 = perfect):");
    println!(
        "  original IDs:    blocked {:.2}   cyclic {:.2}",
        imbalance_report(&costs, Strategy::Blocked { num_bins: 16 }).2,
        imbalance_report(&costs, Strategy::Cyclic { num_bins: 16 }).2
    );
    costs.sort_unstable_by(|a, b| b.cmp(a)); // relabel-by-degree descending
    println!(
        "  degree-sorted:   blocked {:.2}   cyclic {:.2}   ← the §III-D failure mode",
        imbalance_report(&costs, Strategy::Blocked { num_bins: 16 }).2,
        imbalance_report(&costs, Strategy::Cyclic { num_bins: 16 }).2
    );

    // --- 2. the Fig. 9 configuration sweep, spelled out -------------------
    println!("\nhashmap s-line construction (s=2), per configuration:");
    println!("  {:<22} {:>10}", "configuration", "seconds");
    for (name, strategy) in [
        ("blocked", Strategy::Blocked { num_bins: 0 }),
        ("cyclic", Strategy::Cyclic { num_bins: 0 }),
    ] {
        for (rname, relabel) in [
            ("none", Relabel::None),
            ("ascending", Relabel::Ascending),
            ("descending", Relabel::Descending),
        ] {
            let opts = BuildOptions { strategy, relabel };
            let (edges, secs) = time(|| SLineBuilder::new(&h).s(2).options(&opts).edges());
            println!(
                "  {:<22} {:>9.4}s   ({} line edges)",
                format!("{name}/{rname}"),
                secs,
                edges.len()
            );
        }
    }

    // --- 3. dynamic self-scheduling ---------------------------------------
    let queue: Vec<u32> = (0..nwhy::core::ids::from_usize(stats.num_hyperedges)).collect();
    let (a, t_static) = time(|| queue_hashmap(&h, &queue, 2, Strategy::Blocked { num_bins: 0 }));
    let (b, t_dynamic) = time(|| queue_hashmap_dynamic(&h, &queue, 2));
    assert_eq!(a, b);
    println!("\nAlgorithm 1 work-queue drain:");
    println!("  static blocked split: {t_static:.4}s");
    println!("  dynamic chunk steal:  {t_dynamic:.4}s");
    println!("\n(identical edge sets from every configuration — verified)");
}
