//! Authorship analysis — the motivating scenario from the paper's
//! introduction ("modeling an author-paper relationship with graphs is
//! challenging"): mutual relationships among many authors of one paper
//! need a hyperedge, not pairwise edges.
//!
//! This example generates a synthetic collaboration hypergraph (papers =
//! hyperedges, authors = hypernodes) with planted research groups, then:
//!
//! 1. compares the exact hypergraph components (HyperCC vs AdjoinCC vs
//!    the Hygra baseline);
//! 2. sweeps s to show how s-line graphs expose collaboration strength
//!    (s = 1: any shared author; s = 3: core teams);
//! 3. ranks papers by s-betweenness to find the cross-group bridges;
//! 4. lists toplexes (papers whose author set is maximal).
//!
//! Run with: `cargo run --release -p nwhy --example authorship`

use nwhy::core::algorithms::{adjoin_cc_afforest, hyper_cc, toplexes};
use nwhy::core::AdjoinGraph;
use nwhy::gen::communities::{planted_communities, CommunityParams};
use nwhy::hygra::hygra_cc;
use nwhy::session::NWHypergraph;

fn main() {
    // ~120 research groups over 600 authors; papers reuse group members.
    let h = planted_communities(CommunityParams {
        num_nodes: 600,
        num_communities: 120,
        min_size: 3,
        max_size: 12,
        rewire: 0.15,
        seed: 2022,
    });
    let hg = NWHypergraph::from_hypergraph(h.clone());
    let stats = hg.stats();
    println!(
        "collaboration hypergraph: {} papers, {} authors, avg {:.1} authors/paper",
        stats.num_hyperedges, stats.num_hypernodes, stats.avg_edge_degree
    );

    // --- 1. exact components, three ways --------------------------------
    let exact = hyper_cc(&h);
    let adjoin = AdjoinGraph::from_hypergraph(&h);
    let via_adjoin = adjoin_cc_afforest(&adjoin);
    let via_hygra = hygra_cc(&h);
    println!("\nexact hypergraph components:");
    println!(
        "  HyperCC  (bi-adjacency, label prop): {}",
        exact.num_components()
    );
    println!(
        "  AdjoinCC (adjoin graph, Afforest):   {}",
        via_adjoin.num_components()
    );
    println!(
        "  HygraCC  (baseline, Ligra engine):   {}",
        via_hygra.num_components()
    );
    assert_eq!(exact.num_components(), via_adjoin.num_components());
    assert_eq!(exact.num_components(), via_hygra.num_components());

    // --- 2. collaboration strength via the s-sweep ----------------------
    println!("\ns-line graph sweep (papers as vertices):");
    println!(
        "  {:>2} {:>10} {:>12} {:>16}",
        "s", "edges", "components", "largest comp"
    );
    for lg in hg.s_linegraphs(&[1, 2, 3, 4], true) {
        let labels = lg.s_connected_components();
        let mut sizes = std::collections::HashMap::new();
        for &l in &labels {
            *sizes.entry(l).or_insert(0usize) += 1;
        }
        let largest = sizes.values().copied().max().unwrap_or(0);
        let mut distinct: Vec<u32> = labels.clone();
        distinct.sort_unstable();
        distinct.dedup();
        println!(
            "  {:>2} {:>10} {:>12} {:>16}",
            lg.s(),
            lg.graph().num_edges() / 2,
            distinct.len(),
            largest
        );
    }

    // --- 3. bridge papers ------------------------------------------------
    let s2 = hg.s_linegraph(2, true);
    let bc = s2.s_betweenness_centrality(true);
    let mut ranked: Vec<(usize, f64)> = bc.iter().copied().enumerate().collect();
    ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    println!("\ntop 5 bridge papers by 2-betweenness:");
    for &(paper, score) in ranked.iter().take(5) {
        println!(
            "  paper {paper:>4}: betweenness {score:.4}, {} authors",
            h.edge_degree(nwhy::core::ids::from_usize(paper))
        );
    }

    // --- 4. maximal author sets ------------------------------------------
    let tops = toplexes(&h);
    println!(
        "\n{} of {} papers are toplexes (maximal author sets)",
        tops.len(),
        stats.num_hyperedges
    );
}
