//! Rectangular matrix operations — §III-B.1a made visible.
//!
//! The paper stresses that hypergraph libraries must handle *rectangular*
//! incidence matrices (hypernodes × hyperedges differ in count and live
//! in different ID spaces). This example shows what that machinery buys:
//!
//! 1. renders the Fig. 2/4 matrices of a small hypergraph (incidence `B`,
//!    dual `Bᵀ`, and the adjoin block adjacency `[[0, Bᵀ],[B, 0]]`);
//! 2. runs the two-phase hypergraph diffusion `x ← B̂·(B̂ᵀ·x)` to a
//!    stationary distribution and compares it against hypergraph
//!    PageRank (damping → 1 limit);
//! 3. computes the dominant singular value of `B` by alternating power
//!    iteration — the spectral radius of the adjoin adjacency.
//!
//! Run with: `cargo run --release -p nwhy --example spectral`

use nwhy::core::fixtures::paper_hypergraph;
use nwhy::core::matrix::{adjoin_adjacency_matrix, dual_incidence_matrix, incidence_matrix};
use nwhy::core::ops::{diffusion_step, dominant_singular};
use nwhy::gen::profiles::profile_by_name;
use nwhy::hygra::pagerank::{hygra_pagerank, PageRankOptions};

fn main() {
    // --- 1. the paper's matrices, rendered -------------------------------
    let h = paper_hypergraph();
    println!("incidence matrix B (Fig. 2's data, 9 hypernodes x 4 hyperedges):");
    println!("{}", incidence_matrix(&h));
    println!("dual incidence B^T (the dual hypergraph H*):");
    println!("{}", dual_incidence_matrix(&h));
    println!("adjoin adjacency A_G = [[0, B^T], [B, 0]]  (Fig. 4; IDs 0-3 edges, 4-12 nodes):");
    println!("{}", adjoin_adjacency_matrix(&h));

    // --- 2. diffusion vs PageRank on a bigger twin -----------------------
    let big = profile_by_name("com-Orkut")
        .expect("profile")
        .generate(4000, 3);
    let n = big.num_hypernodes();
    println!(
        "com-Orkut twin: {} hypernodes, {} hyperedges",
        n,
        big.num_hyperedges()
    );

    let mut x = vec![1.0 / n as f64; n];
    let mut steps = 0;
    loop {
        let next = diffusion_step(&big, &x);
        let delta: f64 = next.iter().zip(&x).map(|(a, b)| (a - b).abs()).sum();
        x = next;
        steps += 1;
        if delta < 1e-10 || steps >= 200 {
            break;
        }
    }
    println!(
        "\ntwo-phase diffusion converged in {steps} steps (mass {:.6})",
        x.iter().sum::<f64>()
    );

    let (pr, iters) = hygra_pagerank(
        &big,
        PageRankOptions {
            damping: 0.999, // → the diffusion's stationary distribution
            tolerance: 1e-12,
            max_iterations: 2000,
        },
    );
    println!("hypergraph PageRank (damping 0.999) converged in {iters} iterations");

    // rank correlation on the top nodes: both should order hubs the same
    let top_of = |v: &[f64]| {
        let mut idx: Vec<usize> = (0..v.len()).collect();
        idx.sort_by(|&a, &b| v[b].partial_cmp(&v[a]).unwrap());
        idx.truncate(10);
        idx
    };
    let top_diff = top_of(&x);
    let top_pr = top_of(&pr);
    let agree = top_diff.iter().filter(|v| top_pr.contains(v)).count();
    println!("top-10 hypernodes agreement between the two: {agree}/10");

    // --- 3. the dominant singular value ----------------------------------
    let (sigma, _) = dominant_singular(&big, 1e-10, 500);
    let max_edge = big.stats().max_edge_degree as f64;
    let max_node = big.stats().max_node_degree as f64;
    println!(
        "\ndominant singular value of B: {sigma:.3} \
         (bounds: sqrt(max|e|) = {:.3} <= sigma <= sqrt(max|e| * max d(v)) = {:.3})",
        max_edge.sqrt(),
        (max_edge * max_node).sqrt()
    );
    assert!(sigma + 1e-6 >= max_edge.sqrt());
}
