//! Mini strong-scaling run — a console-sized version of the paper's
//! Figures 7–8 experiment: fix the input, double the threads, time the
//! hypergraph CC and BFS kernels in every framework.
//!
//! (The full harnesses live in `crates/bench`; this example is the
//! one-minute demo. On a single-core host every thread count collapses to
//! the same wall time — the table still verifies the kernels run
//! correctly under every pool size.)
//!
//! Run with: `cargo run --release -p nwhy --example scaling`

use nwhy::core::algorithms::{adjoin_bfs, adjoin_cc_afforest, hyper_bfs_top_down, hyper_cc};
use nwhy::core::{AdjoinGraph, HyperedgeId};
use nwhy::gen::profiles::profile_by_name;
use nwhy::hygra::{hygra_bfs, hygra_cc};
use nwhy::util::pool::{max_threads, thread_sweep, with_threads};
use nwhy::util::timer::time;

fn main() {
    let h = profile_by_name("Rand1").expect("profile").generate(2000, 1);
    let stats = h.stats();
    println!(
        "Rand1 twin: {} hyperedges, {} hypernodes, {} incidences",
        stats.num_hyperedges, stats.num_hypernodes, stats.num_incidences
    );
    let adjoin = AdjoinGraph::from_hypergraph(&h);
    let source = 0u32;

    println!(
        "\n{:>8} {:>11} {:>11} {:>11} {:>11} {:>11} {:>11}",
        "threads", "HyperCC", "AdjoinCC", "HygraCC", "HyperBFS", "AdjoinBFS", "HygraBFS"
    );
    for t in thread_sweep(max_threads()) {
        let (cc_h, s1) = with_threads(t, || time(|| hyper_cc(&h)));
        let (cc_a, s2) = with_threads(t, || time(|| adjoin_cc_afforest(&adjoin)));
        let (cc_g, s3) = with_threads(t, || time(|| hygra_cc(&h)));
        let (bfs_h, s4) = with_threads(t, || time(|| hyper_bfs_top_down(&h, source)));
        let (bfs_a, s5) =
            with_threads(t, || time(|| adjoin_bfs(&adjoin, HyperedgeId::new(source))));
        let (bfs_g, s6) = with_threads(t, || time(|| hygra_bfs(&h, source)));

        // cross-check while we're here
        assert_eq!(cc_h.num_components(), cc_a.num_components());
        assert_eq!(cc_h.num_components(), cc_g.num_components());
        assert_eq!(bfs_h.edge_levels, bfs_a.edge_levels);
        assert_eq!(bfs_h.edge_levels, bfs_g.edge_levels);

        println!(
            "{:>8} {:>10.4}s {:>10.4}s {:>10.4}s {:>10.4}s {:>10.4}s {:>10.4}s",
            t, s1, s2, s3, s4, s5, s6
        );
    }
    println!("\nall frameworks agree on components and BFS levels at every thread count ✓");
}
