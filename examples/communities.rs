//! Community structure on a Table I twin — exercising the four
//! hypergraph representations side by side on the same data.
//!
//! Generates the com-Orkut twin (communities = hyperedges, members =
//! hypernodes, exactly how the paper materialized the real dataset), then:
//!
//! 1. runs BFS from the largest community in both exact representations
//!    (bi-adjacency HyperBFS vs adjoin-graph AdjoinBFS) and the Hygra
//!    baseline, verifying they agree;
//! 2. compares the clique expansion's size blow-up against the s-line
//!    graphs' — the memory argument of §III-B.3;
//! 3. uses s-components to find clusters of strongly-overlapping
//!    communities.
//!
//! Run with: `cargo run --release -p nwhy --example communities`

use nwhy::core::algorithms::{adjoin_bfs, hyper_bfs_top_down};
use nwhy::core::clique::{clique_expansion, clique_expansion_work};
use nwhy::core::{AdjoinGraph, HyperedgeId};
use nwhy::gen::profiles::profile_by_name;
use nwhy::hygra::hygra_bfs;
use nwhy::session::NWHypergraph;

fn main() {
    let profile = profile_by_name("com-Orkut").expect("profile exists");
    let h = profile.generate(4000, 7); // 1/4000 scale twin
    let stats = h.stats();
    println!(
        "com-Orkut twin: {} communities, {} members, {} incidences",
        stats.num_hyperedges, stats.num_hypernodes, stats.num_incidences
    );
    println!(
        "degree skew: avg community size {:.1}, largest {}",
        stats.avg_edge_degree, stats.max_edge_degree
    );

    // --- 1. one traversal, three representations -------------------------
    let source = (0..nwhy::core::ids::from_usize(stats.num_hyperedges))
        .max_by_key(|&e| h.edge_degree(e))
        .expect("non-empty");
    println!("\nBFS from the largest community (hyperedge {source}):");

    let hyper = hyper_bfs_top_down(&h, source);
    println!(
        "  HyperBFS  (bi-adjacency):  reached {} communities, {} members",
        hyper.edges_reached(),
        hyper.nodes_reached()
    );

    let adjoin = AdjoinGraph::from_hypergraph(&h);
    let adj = adjoin_bfs(&adjoin, HyperedgeId::new(source));
    let adj_edges = adj.edge_levels.iter().filter(|&&l| l != u32::MAX).count();
    println!(
        "  AdjoinBFS (adjoin graph):  reached {} communities (direction-optimizing)",
        adj_edges
    );

    let hyg = hygra_bfs(&h, source);
    let hyg_edges = hyg.edge_levels.iter().filter(|&&l| l != u32::MAX).count();
    println!(
        "  HygraBFS  (baseline):      reached {} communities (top-down edge_map)",
        hyg_edges
    );

    assert_eq!(hyper.edge_levels, adj.edge_levels);
    assert_eq!(hyper.edge_levels, hyg.edge_levels);
    println!("  all three level arrays identical ✓");

    // --- 2. projection sizes ---------------------------------------------
    println!("\nlower-order projection sizes (undirected edges):");
    let ce_work = clique_expansion_work(&h);
    let ce = clique_expansion(&h);
    println!(
        "  clique expansion: {} edges ({} pre-dedup pairs — the §III-B.3 blow-up)",
        ce.num_edges() / 2,
        ce_work
    );
    let hg = NWHypergraph::from_hypergraph(h.clone());
    for lg in hg.s_linegraphs(&[1, 2, 4, 8], true) {
        println!(
            "  {}-line graph:     {} edges",
            lg.s(),
            lg.graph().num_edges() / 2
        );
    }

    // --- 3. strongly-overlapping community clusters -----------------------
    let s4 = hg.s_linegraph(4, true);
    let labels = s4.s_connected_components();
    let mut cluster_sizes: std::collections::HashMap<u32, usize> = std::collections::HashMap::new();
    for &l in &labels {
        *cluster_sizes.entry(l).or_insert(0) += 1;
    }
    let mut sizes: Vec<usize> = cluster_sizes.values().copied().collect();
    sizes.sort_unstable_by(|a, b| b.cmp(a));
    let nontrivial = sizes.iter().filter(|&&s| s > 1).count();
    println!(
        "\n4-overlap clusters: {} clusters of communities sharing >= 4 members \
              (largest: {:?})",
        nontrivial,
        &sizes[..sizes.len().min(5)]
    );
}
